"""DiskCacheStore behaviour: layout, sharing, eviction, corruption, wiring."""

import pickle

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.polysemy.cache import FeatureCache
from repro.polysemy.cache_store import (
    CacheStore,
    DiskCacheStore,
    MemoryCacheStore,
)
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def key(term: str, corpus: str = "corpus-fp", config: str = "config-fp"):
    return FeatureCache.key(corpus, term, config)


def vector(seed: int, n: int = 23) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=n)


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self, tmp_path):
        assert isinstance(MemoryCacheStore(), CacheStore)
        assert isinstance(DiskCacheStore(tmp_path), CacheStore)

    def test_invalid_sizes_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="max_bytes"):
            DiskCacheStore(tmp_path, max_bytes=0)
        with pytest.raises(ValidationError, match="shard_max_bytes"):
            DiskCacheStore(tmp_path, shard_max_bytes=0)


class TestDiskRoundTrip:
    def test_miss_put_get(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        assert store.get(key("heart attack")) is None
        vec = vector(0)
        store.put(key("heart attack"), vec)
        np.testing.assert_array_equal(store.get(key("heart attack")), vec)
        assert len(store) == 1

    def test_fresh_handle_reads_from_disk(self, tmp_path):
        vec = vector(1)
        DiskCacheStore(tmp_path).put(key("term"), vec)
        reopened = DiskCacheStore(tmp_path)
        got = reopened.get(key("term"))
        np.testing.assert_array_equal(got, vec)
        assert got.dtype == vec.dtype
        assert reopened.stats()["disk_hits"] == 1
        # Second read is served from the in-process memo.
        reopened.get(key("term"))
        assert reopened.stats()["disk_hits"] == 1

    def test_last_write_wins(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put(key("term"), vector(0))
        store.put(key("term"), vector(1))
        np.testing.assert_array_equal(store.get(key("term")), vector(1))
        assert len(store) == 1
        reopened = DiskCacheStore(tmp_path)
        np.testing.assert_array_equal(reopened.get(key("term")), vector(1))

    def test_concurrent_writer_is_picked_up_without_reopen(self, tmp_path):
        reader = DiskCacheStore(tmp_path)
        assert reader.get(key("term")) is None
        writer = DiskCacheStore(tmp_path)  # simulates another process
        writer.put(key("term"), vector(2))
        np.testing.assert_array_equal(reader.get(key("term")), vector(2))

    def test_pickle_reopens_the_same_directory(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=10_000)
        store.put(key("term"), vector(3))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.cache_dir == store.cache_dir
        assert clone.max_bytes == 10_000
        np.testing.assert_array_equal(clone.get(key("term")), vector(3))

    def test_clear_empties_disk_and_counters(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put(key("term"), vector(4))
        store.clear()
        assert len(store) == 0
        assert store.get(key("term")) is None
        assert store.stats() == {
            "disk_hits": 0,
            "evictions": 0,
            "store_bytes": 0,
        }


class TestFingerprintGenerations:
    def test_fingerprints_never_collide(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put(key("t", corpus="c1", config="f1"), vector(0))
        assert store.get(key("t", corpus="c2", config="f1")) is None
        assert store.get(key("t", corpus="c1", config="f2")) is None
        assert store.get(key("t2", corpus="c1", config="f1")) is None
        assert store.get(key("t", corpus="c1", config="f1")) is not None

    def test_each_fingerprint_pair_gets_its_own_directory(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put(key("t", corpus="c1"), vector(0))
        store.put(key("t", corpus="c2"), vector(1))
        generations = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(generations) == 2
        assert len(store) == 2


class TestShardingAndEviction:
    def test_shards_rotate_at_the_size_cap(self, tmp_path):
        store = DiskCacheStore(tmp_path, shard_max_bytes=256)
        for i in range(8):
            store.put(key(f"term {i}"), vector(i))
        generation = next(p for p in tmp_path.iterdir() if p.is_dir())
        shards = sorted(generation.glob("shard-*.bin"))
        assert len(shards) > 1
        for i in range(8):  # every entry still readable across shards
            np.testing.assert_array_equal(
                store.get(key(f"term {i}")), vector(i)
            )

    def test_size_cap_evicts_oldest_entries_first(self, tmp_path):
        store = DiskCacheStore(
            tmp_path, max_bytes=2_000, shard_max_bytes=256
        )
        for i in range(30):
            store.put(key(f"term {i}"), vector(i))
        stats = store.stats()
        assert stats["evictions"] > 0
        assert stats["store_bytes"] <= 2_000
        # The most recent write always survives; the very first is gone.
        np.testing.assert_array_equal(store.get(key("term 29")), vector(29))
        assert store.get(key("term 0")) is None

    def test_stale_generations_evicted_before_active_entries(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=6_000)
        for i in range(12):
            store.put(key(f"old {i}", corpus="old-corpus"), vector(i))
        old_count = len(store)
        assert old_count == 12
        # Writing a new generation past the cap drops the stale one
        # wholesale, not the entries just written.
        for i in range(12):
            store.put(key(f"new {i}", corpus="new-corpus"), vector(100 + i))
        assert store.get(key("new 11", corpus="new-corpus")) is not None
        assert store.get(key("old 0", corpus="old-corpus")) is None
        assert store.stats()["evictions"] >= old_count

    def test_reads_keep_a_generation_alive(self, tmp_path):
        import time

        store = DiskCacheStore(tmp_path, max_bytes=6_000)
        for i in range(8):
            store.put(key(f"read {i}", corpus="read-corpus"), vector(i))
        time.sleep(0.02)
        for i in range(8):
            store.put(key(f"idle {i}", corpus="idle-corpus"), vector(50 + i))
        time.sleep(0.02)
        # A warm, read-only run touches the first generation: LRU is
        # by *use*, so the unread one must be the eviction victim.
        reader = DiskCacheStore(tmp_path, max_bytes=6_000)
        assert reader.get(key("read 0", corpus="read-corpus")) is not None
        time.sleep(0.02)
        writer = DiskCacheStore(tmp_path, max_bytes=6_000)
        for i in range(12):
            writer.put(key(f"new {i}", corpus="new-corpus"), vector(100 + i))
        survivor = DiskCacheStore(tmp_path)
        assert survivor.get(key("idle 0", corpus="idle-corpus")) is None
        assert survivor.get(key("read 0", corpus="read-corpus")) is not None

    def test_eviction_survives_a_reopen(self, tmp_path):
        store = DiskCacheStore(tmp_path, max_bytes=2_000, shard_max_bytes=256)
        for i in range(30):
            store.put(key(f"term {i}"), vector(i))
        reopened = DiskCacheStore(tmp_path)
        assert len(reopened) == len(store)
        np.testing.assert_array_equal(
            reopened.get(key("term 29")), vector(29)
        )

    def test_rapid_generation_turnover_never_evicts_the_current(
        self, tmp_path
    ):
        # Daemon churn: the corpus fingerprint advances on every delta,
        # so generations turn over rapidly under a tight cap.  The
        # generation currently being written must never be the victim —
        # only older generations drain.
        store = DiskCacheStore(tmp_path, max_bytes=4_000)
        for delta in range(10):
            corpus = f"delta-{delta}"
            for i in range(6):
                store.put(key(f"t{i}", corpus=corpus), vector(i))
                assert store.get(key("t0", corpus=corpus)) is not None
            for i in range(6):  # the whole current delta stays warm
                assert store.get(key(f"t{i}", corpus=corpus)) is not None
        assert store.stats()["evictions"] > 0
        assert store.get(key("t0", corpus="delta-0")) is None

    def test_long_lived_handle_restamps_its_hot_generation(
        self, tmp_path, monkeypatch
    ):
        import time

        from repro.polysemy import cache_store

        # Regression: the recency stamp used to be written once per
        # handle, so a daemon that wrote its generation at boot and
        # then only *read* it for hours aged into the first LRU victim.
        # Reads must re-stamp once the touch interval elapses.
        monkeypatch.setattr(cache_store, "TOUCH_INTERVAL_SECONDS", 0.0)
        daemon = DiskCacheStore(tmp_path, max_bytes=6_000)
        for i in range(8):
            daemon.put(key(f"hot {i}", corpus="hot-corpus"), vector(i))
        time.sleep(0.02)
        other = DiskCacheStore(tmp_path, max_bytes=6_000)
        for i in range(8):
            other.put(key(f"idle {i}", corpus="idle-corpus"), vector(50 + i))
        time.sleep(0.02)
        # Long after its writes, the daemon handle reads its hot
        # generation again: that read must refresh the stamp.
        assert daemon.get(key("hot 0", corpus="hot-corpus")) is not None
        time.sleep(0.02)
        writer = DiskCacheStore(tmp_path, max_bytes=6_000)
        for i in range(12):
            writer.put(key(f"new {i}", corpus="new-corpus"), vector(100 + i))
        survivor = DiskCacheStore(tmp_path)
        assert survivor.get(key("idle 0", corpus="idle-corpus")) is None
        assert survivor.get(key("hot 0", corpus="hot-corpus")) is not None


class TestGenerationPinning:
    def test_pinned_generation_survives_cross_handle_eviction(
        self, tmp_path
    ):
        import time

        owner = DiskCacheStore(tmp_path, max_bytes=6_000)
        for i in range(8):
            owner.put(key(f"old {i}", corpus="old-corpus"), vector(i))
        with owner.pin_generation("old-corpus", "config-fp"):
            time.sleep(0.02)
            # A *different* handle (another thread/process would look
            # identical) writes two younger generations past the cap;
            # it honours the on-disk pin marker.
            writer = DiskCacheStore(tmp_path, max_bytes=6_000)
            for i in range(8):
                writer.put(
                    key(f"mid {i}", corpus="mid-corpus"), vector(40 + i)
                )
            time.sleep(0.02)
            for i in range(12):
                writer.put(
                    key(f"new {i}", corpus="new-corpus"), vector(100 + i)
                )
            assert writer.stats()["evictions"] > 0
            assert (
                writer.get(key("old 0", corpus="old-corpus")) is not None
            )
            assert writer.get(key("mid 0", corpus="mid-corpus")) is None

    def test_leaked_pin_marker_expires_and_is_swept(self, tmp_path):
        import os
        import time

        from repro.polysemy.cache_store import PIN_TTL_SECONDS

        store = DiskCacheStore(tmp_path, max_bytes=4_000)
        for i in range(8):
            store.put(key(f"old {i}", corpus="old-corpus"), vector(i))
        generation = next(p for p in tmp_path.iterdir() if p.is_dir())
        marker = generation / ".pin-99999-0"
        marker.write_bytes(b"")
        expired = time.time() - (PIN_TTL_SECONDS + 1)
        os.utime(marker, (expired, expired))
        time.sleep(0.02)
        for i in range(12):
            store.put(key(f"new {i}", corpus="new-corpus"), vector(100 + i))
        # The crashed pinner's stale marker did not immortalise the
        # generation — it was evicted and the marker swept with it.
        assert store.get(key("old 0", corpus="old-corpus")) is None
        assert not marker.exists()

    def test_pins_nest_and_release(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put(key("a", corpus="one"), vector(1))
        store.put(key("b", corpus="two"), vector(2))
        with store.pin_generation("one", "config-fp"):
            with store.pin_generation("one", "config-fp"):
                info = store.describe()
                pinned = [
                    g["name"] for g in info["generations"] if g["pinned"]
                ]
                assert len(pinned) == 1
                assert pinned[0] not in info["eviction_order"]
            assert any(g["pinned"] for g in store.describe()["generations"])
        info = store.describe()
        assert not any(g["pinned"] for g in info["generations"])
        assert len(info["eviction_order"]) == 2


class TestCorruptionTolerance:
    def put_two(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put(key("first"), vector(0))
        store.put(key("second"), vector(1))
        return store

    def generation_dir(self, tmp_path):
        return next(p for p in tmp_path.iterdir() if p.is_dir())

    def test_truncated_shard_is_a_miss_not_a_crash(self, tmp_path):
        self.put_two(tmp_path)
        shard = next(self.generation_dir(tmp_path).glob("shard-*.bin"))
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2])
        reopened = DiskCacheStore(tmp_path)
        np.testing.assert_array_equal(reopened.get(key("first")), vector(0))
        assert reopened.get(key("second")) is None

    def test_flipped_byte_fails_the_crc_check(self, tmp_path):
        self.put_two(tmp_path)
        shard = next(self.generation_dir(tmp_path).glob("shard-*.bin"))
        data = bytearray(shard.read_bytes())
        data[-1] ^= 0xFF
        shard.write_bytes(bytes(data))
        reopened = DiskCacheStore(tmp_path)
        np.testing.assert_array_equal(reopened.get(key("first")), vector(0))
        assert reopened.get(key("second")) is None

    def test_garbage_index_lines_are_skipped(self, tmp_path):
        self.put_two(tmp_path)
        index = self.generation_dir(tmp_path) / "index.jsonl"
        lines = index.read_bytes().splitlines(keepends=True)
        index.write_bytes(
            b"not json at all\n" + lines[0] + b'{"term": 3}\n' + lines[1]
        )
        reopened = DiskCacheStore(tmp_path)
        np.testing.assert_array_equal(reopened.get(key("first")), vector(0))
        np.testing.assert_array_equal(reopened.get(key("second")), vector(1))
        assert len(reopened) == 2

    def test_torn_trailing_index_line_is_ignored(self, tmp_path):
        self.put_two(tmp_path)
        index = self.generation_dir(tmp_path) / "index.jsonl"
        data = index.read_bytes()
        index.write_bytes(data[:-10])  # writer died mid-append
        reopened = DiskCacheStore(tmp_path)
        np.testing.assert_array_equal(reopened.get(key("first")), vector(0))
        assert reopened.get(key("second")) is None

    def test_next_put_is_not_glued_onto_a_torn_index_tail(self, tmp_path):
        # A writer killed mid-append leaves a torn trailing line; the
        # next successful put must still be durable for fresh readers.
        self.put_two(tmp_path)
        index = self.generation_dir(tmp_path) / "index.jsonl"
        index.write_bytes(index.read_bytes()[:-10])  # torn, no newline
        writer = DiskCacheStore(tmp_path)
        writer.put(key("third"), vector(2))
        fresh = DiskCacheStore(tmp_path)
        np.testing.assert_array_equal(fresh.get(key("first")), vector(0))
        np.testing.assert_array_equal(fresh.get(key("third")), vector(2))
        assert fresh.get(key("second")) is None  # the torn entry itself

    def test_put_survives_a_concurrent_eviction_of_its_generation(
        self, tmp_path
    ):
        import shutil

        store = DiskCacheStore(tmp_path)
        store.put(key("first"), vector(0))
        # Another process's LRU eviction drops the whole generation
        # between two of our writes.
        shutil.rmtree(self.generation_dir(tmp_path))
        store.put(key("second"), vector(1))  # must not raise
        fresh = DiskCacheStore(tmp_path)
        assert fresh.get(key("first")) is None
        np.testing.assert_array_equal(fresh.get(key("second")), vector(1))

    def test_missing_shard_file_is_a_miss(self, tmp_path):
        store = self.put_two(tmp_path)
        for shard in self.generation_dir(tmp_path).glob("shard-*.bin"):
            shard.unlink()
        reopened = DiskCacheStore(tmp_path)
        assert reopened.get(key("first")) is None
        assert reopened.get(key("second")) is None
        # The handle that wrote them still serves from its memo.
        np.testing.assert_array_equal(store.get(key("first")), vector(0))


class TestConfigWiring:
    def test_cache_dir_requires_feature_cache(self, tmp_path):
        with pytest.raises(ValidationError, match="cache_dir"):
            EnrichmentConfig(cache_dir=str(tmp_path), feature_cache=False)

    def test_cache_max_bytes_requires_cache_dir(self):
        with pytest.raises(ValidationError, match="cache_max_bytes"):
            EnrichmentConfig(cache_max_bytes=1_000_000)

    def test_cache_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValidationError, match="cache_max_bytes"):
            EnrichmentConfig(cache_dir=str(tmp_path), cache_max_bytes=0)


class TestWorkflowPersistence:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_enrichment_scenario(
            seed=5, n_concepts=25, docs_per_concept=5,
            polysemy_histogram={2: 4},
        )

    def run(self, scenario, cache_dir, **kwargs):
        config = EnrichmentConfig(
            n_candidates=8, cache_dir=str(cache_dir), **kwargs
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        return enricher.enrich(scenario.corpus)

    @staticmethod
    def outcome(report):
        return [
            (
                t.term, t.polysemic, t.n_senses, t.skipped_reason,
                [(p.rank, p.term, p.cosine) for p in t.propositions],
            )
            for t in report.terms
        ]

    def test_warm_run_from_a_fresh_enricher(self, scenario, tmp_path):
        cold = self.run(scenario, tmp_path)
        assert cold.cache["misses"] > 0
        assert cold.cache["disk_hits"] == 0
        assert cold.cache["store_bytes"] > 0
        warm = self.run(scenario, tmp_path)  # brand-new enricher
        assert warm.cache["misses"] == 0
        assert warm.cache["hits"] == cold.cache["misses"]
        assert warm.cache["disk_hits"] == warm.cache["hits"]
        assert self.outcome(warm) == self.outcome(cold)

    def test_warm_process_pool_counters_match_thread(self, scenario, tmp_path):
        cold = self.run(scenario, tmp_path)
        threaded = self.run(
            scenario, tmp_path, n_workers=2, worker_backend="thread"
        )
        process = self.run(
            scenario, tmp_path, n_workers=2, worker_backend="process",
            batch_size=2,
        )
        assert process.cache == threaded.cache
        assert process.cache["hits"] == cold.cache["misses"]
        assert process.cache["misses"] == 0
        assert self.outcome(process) == self.outcome(cold)

    def test_worker_store_hits_are_merged_back(
        self, scenario, tmp_path, monkeypatch
    ):
        # Regression: lookups that pool workers serve straight from the
        # shared store must flow back into the parent's counters, or
        # EnrichmentReport.cache under-reports the process pool.  Blind
        # the parent's prefill (record=False peeks only) so every
        # detect-stage lookup can only be satisfied inside a worker.
        self.run(scenario, tmp_path)  # populate the store
        original = FeatureCache.lookup

        def blinded(self, key, *, record=True):
            if not record:
                return None
            return original(self, key, record=record)

        monkeypatch.setattr(FeatureCache, "lookup", blinded)
        report = self.run(
            scenario, tmp_path, n_workers=2, worker_backend="process",
            batch_size=2,
        )
        featurised = [
            t for t in report.terms if t.skipped_reason is None
        ]
        assert featurised
        # Every featurised candidate was a worker-side store hit: no
        # misses, and the disk-hit counter includes the workers' reads.
        assert report.cache["misses"] == 0
        assert report.cache["hits"] >= len(featurised)
        assert report.cache["disk_hits"] >= len(featurised)

    def test_capped_store_still_produces_identical_reports(
        self, scenario, tmp_path
    ):
        cold = self.run(scenario, tmp_path)
        capped_dir = tmp_path / "capped"
        capped = self.run(
            scenario, capped_dir, cache_max_bytes=4_096
        )
        assert self.outcome(capped) == self.outcome(cold)
        assert capped.cache["store_bytes"] <= 4_096 + 2_048
