"""Multilingual behaviour: the paper targets English, French, and Spanish."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.extraction.candidates import harvest_candidates
from repro.text.ngrams import extract_pattern_phrases
from repro.text.patterns import TermPatternMatcher, default_patterns
from repro.text.postag import LexiconTagger
from repro.text.stemming import stem
from repro.text.stopwords import stopwords_for
from repro.text.tokenizer import tokenize_lower


class TestFrenchPipeline:
    LEXICON = {
        "maladie": "NOUN", "cornée": "NOUN", "oculaire": "ADJ",
        "lésion": "NOUN", "traitement": "NOUN", "chronique": "ADJ",
    }

    def test_head_initial_pattern_matches(self):
        # French terms are head-initial: "maladie oculaire" = NOUN ADJ.
        tagger = LexiconTagger(self.LEXICON, language="fr")
        tagged = tagger.tag(tokenize_lower("la maladie oculaire chronique"))
        matcher = TermPatternMatcher(language="fr")
        phrases = [p for p, __ in extract_pattern_phrases(tagged, matcher)]
        assert ("maladie", "oculaire") in phrases
        assert ("maladie", "oculaire", "chronique") in phrases

    def test_noun_adp_noun_pattern(self):
        tagger = LexiconTagger(self.LEXICON, language="fr")
        tagged = tagger.tag(["maladie", "de", "cornée"])
        # "de" is a French stopword → DET-like function tag breaks naive
        # patterns; the dedicated ADP tagging comes from the closed-class
        # English table only, so check the pattern inventory instead.
        patterns = {p.tags for p in default_patterns("fr")}
        assert ("NOUN", "ADP", "NOUN") in patterns

    def test_harvest_french_corpus(self):
        corpus = Corpus(
            [
                Document("d1", [["maladie", "oculaire", "grave"],
                                ["lésion", "chronique"]]),
                Document("d2", [["maladie", "oculaire", "persistante"]]),
            ]
        )
        tagger = LexiconTagger(self.LEXICON, language="fr")
        context = harvest_candidates(corpus, tagger=tagger, language="fr")
        assert ("maladie", "oculaire") in context.candidates
        assert context.candidates[("maladie", "oculaire")].frequency == 2


class TestSpanishPipeline:
    LEXICON = {
        "enfermedad": "NOUN", "ocular": "ADJ", "córnea": "NOUN",
        "crónica": "ADJ", "tratamiento": "NOUN",
    }

    def test_head_initial_pattern_matches(self):
        tagger = LexiconTagger(self.LEXICON, language="es")
        tagged = tagger.tag(tokenize_lower("la enfermedad ocular crónica"))
        matcher = TermPatternMatcher(language="es")
        phrases = [p for p, __ in extract_pattern_phrases(tagged, matcher)]
        assert ("enfermedad", "ocular") in phrases

    def test_stopwords_do_not_enter_candidates(self):
        corpus = Corpus(
            [Document("d", [["la", "enfermedad", "ocular", "de", "córnea"]])]
        )
        tagger = LexiconTagger(self.LEXICON, language="es")
        context = harvest_candidates(corpus, tagger=tagger, language="es")
        for tokens in context.candidates:
            assert "la" not in tokens


class TestStemConsistencyAcrossLanguages:
    @pytest.mark.parametrize(
        ("language", "a", "b"),
        [
            ("en", "injuries", "injury"),
            ("fr", "maladies", "maladie"),
            ("es", "enfermedades", "enfermedad"),
        ],
    )
    def test_singular_plural_conflate(self, language, a, b):
        assert stem(a, language) == stem(b, language)

    def test_stopword_inventories_disjoint_enough(self):
        en = stopwords_for("en")
        fr = stopwords_for("fr")
        es = stopwords_for("es")
        # shared Romance functionals exist ("la"), but the bulk differs
        assert len(en & fr) < 0.2 * len(en)
        assert len(fr & es) < 0.4 * len(fr)
