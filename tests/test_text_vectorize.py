"""Tests for repro.text.vocabulary and repro.text.vectorize."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NotFittedError
from repro.text.vectorize import BowVectorizer, TfidfVectorizer, idf_weight
from repro.text.vocabulary import Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0  # idempotent
        assert vocab["a"] == 0
        assert vocab.token(1) == "b"
        assert "a" in vocab and "z" not in vocab
        assert len(vocab) == 2

    def test_init_from_iterable_preserves_order(self):
        vocab = Vocabulary(["x", "y", "x"])
        assert vocab.tokens() == ["x", "y"]

    def test_get_default(self):
        vocab = Vocabulary(["x"])
        assert vocab.get("missing") is None
        assert vocab.get("missing", -1) == -1

    def test_freeze_rejects_new(self):
        frozen = Vocabulary(["x"]).freeze()
        assert frozen.add("x") == 0
        with pytest.raises(KeyError):
            frozen.add("new")

    def test_iteration(self):
        assert list(Vocabulary(["a", "b"])) == ["a", "b"]


DOCS = [
    ["corneal", "injury", "heals"],
    ["corneal", "disease", "progresses"],
    ["eye", "injury", "report"],
]


class TestBowVectorizer:
    def test_shape_and_counts(self):
        vec = BowVectorizer(stop_language=None)
        matrix = vec.fit_transform(DOCS)
        assert matrix.shape == (3, len(vec.vocabulary_))
        names = vec.feature_names()
        col = names.index("corneal")
        assert matrix[0, col] == 1.0
        assert matrix[2, col] == 0.0

    def test_counts_repeated_tokens(self):
        vec = BowVectorizer(stop_language=None)
        matrix = vec.fit_transform([["a", "a", "b"]])
        names = vec.feature_names()
        assert matrix[0, names.index("a")] == 2.0

    def test_binary_mode(self):
        vec = BowVectorizer(stop_language=None, binary=True)
        matrix = vec.fit_transform([["a", "a", "b"]])
        assert matrix.max() == 1.0

    def test_stopwords_removed(self):
        vec = BowVectorizer(stop_language="en")
        vec.fit([["the", "cornea"]])
        assert "the" not in vec.feature_names()

    def test_min_df_filters(self):
        vec = BowVectorizer(stop_language=None, min_df=2)
        vec.fit(DOCS)
        names = vec.feature_names()
        assert "corneal" in names and "injury" in names
        assert "heals" not in names

    def test_unknown_tokens_ignored_at_transform(self):
        vec = BowVectorizer(stop_language=None)
        vec.fit([["a"]])
        matrix = vec.transform([["a", "zzz"]])
        assert matrix.sum() == 1.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BowVectorizer().transform([["a"]])

    def test_normalize_rows(self):
        vec = BowVectorizer(stop_language=None, normalize=True)
        matrix = vec.fit_transform(DOCS)
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        np.testing.assert_allclose(norms, 1.0)

    def test_lowercase_toggle(self):
        vec = BowVectorizer(stop_language=None, lowercase=False)
        vec.fit([["Corneal", "corneal"]])
        assert len(vec.feature_names()) == 2

    def test_bad_min_df(self):
        with pytest.raises(ValueError):
            BowVectorizer(min_df=0)


class TestTfidfVectorizer:
    def test_rows_unit_norm(self):
        vec = TfidfVectorizer(stop_language=None)
        matrix = vec.fit_transform(DOCS)
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        np.testing.assert_allclose(norms, 1.0)

    def test_rare_terms_outweigh_common(self):
        docs = [["common", "rare1"], ["common", "x"], ["common", "y"]]
        vec = TfidfVectorizer(stop_language=None, normalize=False)
        matrix = vec.fit_transform(docs)
        names = vec.feature_names()
        assert (
            matrix[0, names.index("rare1")] > matrix[0, names.index("common")]
        )

    def test_idf_vector_matches_formula(self):
        vec = TfidfVectorizer(stop_language=None)
        vec.fit(DOCS)
        names = vec.feature_names()
        idf = vec.idf()
        df_corneal = 2
        expected = np.log((1 + 3) / (1 + df_corneal)) + 1.0
        assert idf[names.index("corneal")] == pytest.approx(expected)

    def test_sublinear_tf(self):
        docs = [["a"] * 10 + ["b"]]
        plain = TfidfVectorizer(stop_language=None, normalize=False)
        sub = TfidfVectorizer(stop_language=None, normalize=False, sublinear_tf=True)
        m_plain = plain.fit_transform(docs)
        m_sub = sub.fit_transform(docs)
        names = plain.feature_names()
        a = names.index("a")
        assert m_sub[0, a] < m_plain[0, a]

    @given(
        st.lists(
            st.lists(st.sampled_from(["t1", "t2", "t3", "t4"]), min_size=1, max_size=8),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_transform_is_deterministic(self, docs):
        vec = TfidfVectorizer(stop_language=None)
        m1 = vec.fit_transform(docs)
        m2 = vec.transform(docs)
        assert (m1 != m2).nnz == 0


class TestIdfWeight:
    def test_monotone_in_df(self):
        assert idf_weight(100, 1) > idf_weight(100, 50)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            idf_weight(0, 1)
        with pytest.raises(ValueError):
            idf_weight(10, -1)
