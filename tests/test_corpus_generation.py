"""Tests for repro.lexicon, repro.corpus.topics, pubmed, mshwsd."""

import numpy as np
import pytest

from repro.corpus.mshwsd import MSHWSD_SENSE_DISTRIBUTION, MshWsdEntity, MshWsdSimulator
from repro.corpus.pubmed import PubMedSimulator, PubMedSpec
from repro.corpus.topics import (
    BackgroundVocabulary,
    ConceptTopicModel,
    make_topic,
)
from repro.errors import ValidationError
from repro.lexicon import BioLexicon
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.utils.rng import ensure_rng


class TestBioLexicon:
    def test_minted_words_unique(self):
        lex = BioLexicon(seed=0)
        minted = {lex.new_noun() for _ in range(300)}
        assert len(minted) == 300

    def test_minted_pos_recorded(self):
        lex = BioLexicon(seed=0)
        noun = lex.new_noun()
        adj = lex.new_adjective()
        verb = lex.new_verb()
        assert lex.pos_lexicon[noun] == "NOUN"
        assert lex.pos_lexicon[adj] == "ADJ"
        assert lex.pos_lexicon[verb] == "VERB"

    def test_core_words_present(self):
        lex = BioLexicon(seed=0)
        assert lex.pos_lexicon["cornea"] == "NOUN"
        assert lex.pos_lexicon["corneal"] == "ADJ"

    def test_terms_follow_patterns(self):
        lex = BioLexicon(seed=1)
        term2 = lex.new_term(2)
        assert len(term2) == 2
        tags = [lex.pos_lexicon[w] for w in term2]
        assert tags in (["ADJ", "NOUN"], ["NOUN", "NOUN"])
        term3 = lex.new_term(3)
        assert lex.pos_lexicon[term3[-1]] == "NOUN"

    def test_deterministic(self):
        a = BioLexicon(seed=5)
        b = BioLexicon(seed=5)
        assert [a.new_noun() for _ in range(10)] == [b.new_noun() for _ in range(10)]

    def test_bad_term_size(self):
        with pytest.raises(ValueError):
            BioLexicon(seed=0).new_term(0)


def tiny_ontology_and_lexicon(seed=0):
    lexicon = BioLexicon(seed=seed)
    spec = GeneratorSpec(n_concepts=12, n_roots=2, mean_synonyms=0.5)
    onto = OntologyGenerator(spec, lexicon=lexicon, seed=seed).generate()
    return onto, lexicon


class TestTopics:
    def test_make_topic_weights_normalised(self):
        topic = make_topic("t", ["a", "b", "c"])
        assert topic.signature_weights.sum() == pytest.approx(1.0)

    def test_make_topic_empty_raises(self):
        with pytest.raises(ValidationError):
            make_topic("t", [])

    def test_topic_sampling_stays_in_signature(self):
        topic = make_topic("t", ["a", "b", "c"])
        words = topic.sample_signature(ensure_rng(0), 50)
        assert set(words) <= {"a", "b", "c"}

    def test_model_covers_every_concept(self):
        onto, lexicon = tiny_ontology_and_lexicon()
        model = ConceptTopicModel(onto, lexicon, seed=0)
        for cid in onto.concept_ids():
            assert model.topic(cid).signature

    def test_signature_contains_term_words(self):
        onto, lexicon = tiny_ontology_and_lexicon()
        model = ConceptTopicModel(onto, lexicon, seed=0)
        for cid in onto.concept_ids():
            first_term_words = [
                w for w in onto.concept(cid).preferred_term.split() if len(w) > 2
            ]
            signature = set(model.topic(cid).signature)
            assert set(first_term_words) <= signature

    def test_father_son_overlap_exceeds_random_pairs(self):
        onto, lexicon = tiny_ontology_and_lexicon(seed=3)
        model = ConceptTopicModel(onto, lexicon, inherit_fraction=0.5, seed=3)
        related, unrelated = [], []
        cids = onto.concept_ids()
        for cid in cids:
            for father in onto.fathers(cid):
                related.append(model.signature_overlap(cid, father))
        for a in cids[:6]:
            for b in cids[6:]:
                if a not in onto.fathers(b) and b not in onto.fathers(a):
                    unrelated.append(model.signature_overlap(a, b))
        assert np.mean(related) > np.mean(unrelated)

    def test_unknown_concept_raises(self):
        onto, lexicon = tiny_ontology_and_lexicon()
        model = ConceptTopicModel(onto, lexicon, seed=0)
        with pytest.raises(ValidationError):
            model.topic("missing")

    def test_invalid_params(self):
        onto, lexicon = tiny_ontology_and_lexicon()
        with pytest.raises(ValidationError):
            ConceptTopicModel(onto, lexicon, signature_size=2)
        with pytest.raises(ValidationError):
            ConceptTopicModel(onto, lexicon, inherit_fraction=1.0)

    def test_background_vocabulary(self):
        lexicon = BioLexicon(seed=0)
        bg = BackgroundVocabulary(lexicon, size=100, seed=0)
        assert len(bg.words) == 100
        sample = bg.sample(ensure_rng(0), 30)
        assert set(sample) <= set(bg.words)


class TestPubMedSimulator:
    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            PubMedSpec(sentences_per_doc=(0, 3))
        with pytest.raises(ValidationError):
            PubMedSpec(background_fraction=1.5)

    def test_generate_shapes(self):
        onto, lexicon = tiny_ontology_and_lexicon()
        sim = PubMedSimulator(onto, lexicon, seed=0)
        corpus = sim.generate(20)
        assert corpus.n_documents() == 20
        lo, hi = sim.spec.sentences_per_doc
        for doc in corpus:
            assert lo <= len(doc.sentences) <= hi
            assert doc.concept_ids and doc.concept_ids[0] in onto

    def test_documents_mention_their_concept_terms(self):
        onto, lexicon = tiny_ontology_and_lexicon(seed=1)
        sim = PubMedSimulator(
            onto, lexicon, spec=PubMedSpec(mention_prob=1.0), seed=1
        )
        corpus = sim.generate_balanced(2)
        mentioned = 0
        for doc in corpus:
            concept = onto.concept(doc.concept_ids[0])
            text = " ".join(doc.tokens())
            if any(term in text for term in concept.all_terms()):
                mentioned += 1
        assert mentioned == corpus.n_documents()

    def test_balanced_coverage(self):
        onto, lexicon = tiny_ontology_and_lexicon(seed=2)
        sim = PubMedSimulator(onto, lexicon, seed=2)
        corpus = sim.generate_balanced(3)
        counts = {}
        for doc in corpus:
            counts[doc.concept_ids[0]] = counts.get(doc.concept_ids[0], 0) + 1
        assert all(v == 3 for v in counts.values())
        assert len(counts) == len(onto)

    def test_deterministic(self):
        onto_a, lex_a = tiny_ontology_and_lexicon(seed=4)
        onto_b, lex_b = tiny_ontology_and_lexicon(seed=4)
        corpus_a = PubMedSimulator(onto_a, lex_a, seed=9).generate(5)
        corpus_b = PubMedSimulator(onto_b, lex_b, seed=9).generate(5)
        assert [d.tokens() for d in corpus_a] == [d.tokens() for d in corpus_b]

    def test_bad_generate_args(self):
        onto, lexicon = tiny_ontology_and_lexicon()
        sim = PubMedSimulator(onto, lexicon, seed=0)
        with pytest.raises(ValidationError):
            sim.generate(0)
        with pytest.raises(ValidationError):
            sim.generate(5, concept_ids=[])
        with pytest.raises(ValidationError):
            sim.generate_balanced(0)


class TestMshWsdSimulator:
    def test_default_distribution_matches_real_dataset_shape(self):
        assert sum(MSHWSD_SENSE_DISTRIBUTION.values()) == 203
        mean_k = sum(k * n for k, n in MSHWSD_SENSE_DISTRIBUTION.items()) / 203
        assert 2.0 < mean_k < 2.2

    def test_generate_counts(self):
        sim = MshWsdSimulator(n_entities=12, contexts_per_sense=5, seed=0)
        entities = sim.generate()
        assert len(entities) == 12
        for entity in entities:
            assert 2 <= entity.true_k <= 5
            assert entity.n_contexts() == entity.true_k * 5
            assert set(entity.labels) == set(range(entity.true_k))

    def test_context_lengths(self):
        sim = MshWsdSimulator(
            n_entities=3, contexts_per_sense=4, context_length=20, seed=1
        )
        for entity in sim.generate():
            assert all(len(ctx) == 20 for ctx in entity.contexts)

    def test_senses_are_separable(self):
        sim = MshWsdSimulator(
            n_entities=4, contexts_per_sense=10, sense_overlap=0.0, seed=2
        )
        for entity in sim.generate():
            by_sense = {}
            for ctx, label in zip(entity.contexts, entity.labels):
                by_sense.setdefault(label, set()).update(ctx)
            # within-sense vocabularies must differ meaningfully across senses
            vocabularies = list(by_sense.values())
            for i in range(len(vocabularies)):
                for j in range(i + 1, len(vocabularies)):
                    a, b = vocabularies[i], vocabularies[j]
                    jaccard = len(a & b) / len(a | b)
                    assert jaccard < 0.75

    def test_deterministic(self):
        a = MshWsdSimulator(n_entities=5, contexts_per_sense=3, seed=7).generate()
        b = MshWsdSimulator(n_entities=5, contexts_per_sense=3, seed=7).generate()
        assert [e.term for e in a] == [e.term for e in b]
        assert [e.contexts for e in a] == [e.contexts for e in b]

    def test_entity_alignment_enforced(self):
        with pytest.raises(ValidationError):
            MshWsdEntity("t", 2, contexts=[("a",)], labels=[])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_entities": 0},
            {"contexts_per_sense": 1},
            {"context_length": 2},
            {"background_fraction": 1.0},
            {"sense_overlap": 1.0},
            {"sense_distribution": {7: 3}},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValidationError):
            MshWsdSimulator(**kwargs)
