"""Tests for repro.clustering.similarity, model, criterion."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.clustering.criterion import criterion_value
from repro.clustering.model import ClusterSolution, ClusterStats, relabel_contiguous
from repro.clustering.similarity import (
    cosine_similarity_matrix,
    isim_esim,
    normalize_rows,
)
from repro.errors import ClusteringError


def two_blob_matrix(n_per=5):
    """Two orthogonal groups of near-identical unit vectors."""
    a = np.tile([1.0, 0.0, 0.0, 0.0], (n_per, 1))
    b = np.tile([0.0, 0.0, 1.0, 0.0], (n_per, 1))
    return np.vstack([a, b])


class TestNormalizeRows:
    def test_dense_unit_norms(self):
        m = np.array([[3.0, 4.0], [1.0, 0.0]])
        unit = normalize_rows(m)
        np.testing.assert_allclose(np.linalg.norm(unit, axis=1), 1.0)

    def test_sparse_unit_norms(self):
        m = sp.csr_matrix(np.array([[3.0, 4.0], [0.0, 2.0]]))
        unit = normalize_rows(m)
        norms = np.sqrt(unit.multiply(unit).sum(axis=1)).A.ravel()
        np.testing.assert_allclose(norms, 1.0)

    def test_zero_rows_survive(self):
        unit = normalize_rows(np.zeros((2, 3)))
        np.testing.assert_array_equal(unit, np.zeros((2, 3)))

    def test_original_not_mutated(self):
        m = np.array([[2.0, 0.0]])
        normalize_rows(m)
        assert m[0, 0] == 2.0

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            normalize_rows(np.zeros(3))


class TestCosineSimilarityMatrix:
    def test_self_similarity_one(self):
        sims = cosine_similarity_matrix(two_blob_matrix())
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_orthogonal_groups(self):
        sims = cosine_similarity_matrix(two_blob_matrix(3))
        assert sims[0, 3] == pytest.approx(0.0)
        assert sims[0, 1] == pytest.approx(1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(6, 4))
        sims = cosine_similarity_matrix(m)
        np.testing.assert_allclose(sims, sims.T, atol=1e-12)

    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(1)
        m = np.abs(rng.normal(size=(5, 8)))
        np.testing.assert_allclose(
            cosine_similarity_matrix(m),
            cosine_similarity_matrix(sp.csr_matrix(m)),
            atol=1e-12,
        )


class TestIsimEsim:
    def test_perfect_split(self):
        m = two_blob_matrix(4)
        labels = np.array([0] * 4 + [1] * 4)
        sizes, isim, esim = isim_esim(m, labels)
        np.testing.assert_array_equal(sizes, [4, 4])
        np.testing.assert_allclose(isim, 1.0)
        np.testing.assert_allclose(esim, 0.0, atol=1e-12)

    def test_merged_cluster_isim_lower(self):
        m = two_blob_matrix(4)
        labels = np.zeros(8, dtype=int)
        __, isim, __ = isim_esim(m, labels)
        # Half the pairs are cross-group (similarity 0): ISIM = 0.5.
        assert isim[0] == pytest.approx(0.5)

    def test_esim_of_single_cluster_zero(self):
        m = two_blob_matrix(2)
        __, __, esim = isim_esim(m, np.zeros(4, dtype=int))
        assert esim[0] == 0.0

    def test_singleton_cluster_isim_one(self):
        m = normalize_rows(np.array([[1.0, 0.0], [0.0, 1.0]]))
        sizes, isim, __ = isim_esim(m, np.array([0, 1]))
        np.testing.assert_allclose(isim, 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            isim_esim(two_blob_matrix(2), np.zeros(3, dtype=int))

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_isim_bounded_for_nonnegative_data(self, n, seed):
        rng = np.random.default_rng(seed)
        m = normalize_rows(np.abs(rng.normal(size=(n, 4))) + 1e-9)
        labels = rng.integers(0, 2, size=n)
        labels[0] = 0
        labels[-1] = 1 if n > 1 else 0
        labels, k = relabel_contiguous(labels)
        __, isim, esim = isim_esim(m, labels)
        assert np.all(isim <= 1.0 + 1e-9)
        assert np.all(isim >= -1e-9)
        assert np.all(esim >= -1e-9)


class TestClusterModel:
    def test_stats_from_labels(self):
        m = two_blob_matrix(3)
        labels = np.array([0, 0, 0, 1, 1, 1])
        stats = ClusterStats.from_labels(m, labels)
        assert stats.k == 2
        assert stats.n == 6
        assert stats.mean_isim() == pytest.approx(1.0)
        assert stats.mean_esim() == pytest.approx(0.0, abs=1e-12)

    def test_solution_validation(self):
        with pytest.raises(ClusteringError):
            ClusterSolution(labels=np.array([0, 2]), k=2)
        with pytest.raises(ClusteringError):
            ClusterSolution(labels=np.array([[0], [1]]), k=2)
        with pytest.raises(ClusteringError):
            ClusterSolution(labels=np.array([-1, 0]), k=2)

    def test_solution_helpers(self):
        sol = ClusterSolution(labels=np.array([0, 1, 0]), k=2)
        np.testing.assert_array_equal(sol.cluster_members(0), [0, 2])
        np.testing.assert_array_equal(sol.sizes(), [2, 1])
        with pytest.raises(ClusteringError):
            sol.cluster_members(5)

    def test_with_stats(self):
        m = two_blob_matrix(2)
        sol = ClusterSolution(labels=np.array([0, 0, 1, 1]), k=2)
        assert sol.stats is None
        enriched = sol.with_stats(m)
        assert enriched.stats is not None
        assert enriched.stats.k == 2

    def test_relabel_contiguous(self):
        labels, k = relabel_contiguous(np.array([5, 5, 9, 5, 2]))
        np.testing.assert_array_equal(labels, [0, 0, 1, 0, 2])
        assert k == 3


class TestCriterion:
    def test_i2_prefers_true_split(self):
        m = two_blob_matrix(4)
        good = np.array([0] * 4 + [1] * 4)
        bad = np.array([0, 1] * 4)
        assert criterion_value(m, good, "i2") > criterion_value(m, bad, "i2")

    def test_i2_value_on_perfect_clusters(self):
        m = two_blob_matrix(3)
        labels = np.array([0] * 3 + [1] * 3)
        # Each composite vector has norm 3 → I2 = 6.
        assert criterion_value(m, labels, "i2") == pytest.approx(6.0)

    def test_i1_equals_n_for_perfect_clusters(self):
        m = two_blob_matrix(3)
        labels = np.array([0] * 3 + [1] * 3)
        assert criterion_value(m, labels, "i1") == pytest.approx(6.0)

    def test_e1_lower_for_better_split(self):
        m = two_blob_matrix(4)
        good = np.array([0] * 4 + [1] * 4)
        bad = np.array([0, 1] * 4)
        assert criterion_value(m, good, "e1") < criterion_value(m, bad, "e1")

    def test_h2_is_ratio(self):
        m = two_blob_matrix(2)
        labels = np.array([0, 0, 1, 1])
        h2 = criterion_value(m, labels, "h2")
        i2 = criterion_value(m, labels, "i2")
        e1 = criterion_value(m, labels, "e1")
        assert h2 == pytest.approx(i2 / e1)

    def test_unknown_criterion(self):
        with pytest.raises(ClusteringError):
            criterion_value(two_blob_matrix(2), np.zeros(4, dtype=int), "x9")

    def test_length_mismatch(self):
        with pytest.raises(ClusteringError):
            criterion_value(two_blob_matrix(2), np.zeros(3, dtype=int), "i2")
