"""The HTTP enrichment & shared-cache service, end to end.

Covers the wire format, every server route, the
:class:`~repro.service.client.RemoteCacheStore` protocol behaviour,
server-side enrichment jobs, and the workflow-level acceptance shape:
two pipeline runs sharing one server produce byte-identical reports
with the second run warm (``remote_hits > 0``), and a dead server
degrades to misses — never an exception.
"""

import json
import pickle
import time

import numpy as np
import pytest

from repro.corpus.io import write_corpus_jsonl
from repro.errors import ValidationError
from repro.ontology.io import write_ontology_json
from repro.polysemy.cache import FeatureCache
from repro.polysemy.cache_store import CacheStore, DiskCacheStore
from repro.scenarios import make_enrichment_scenario
from repro.service.client import RemoteCacheStore, ServiceClient, ServiceError
from repro.service.jobs import JobManager
from repro.service.server import CacheServiceServer
from repro.service.wire import (
    decode_key,
    decode_key_batch,
    decode_vector,
    decode_vector_batch,
    encode_key,
    encode_key_batch,
    encode_vector,
    encode_vector_batch,
)
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def key(term="heart attack", corpus="corpus-fp", config="config-fp"):
    return FeatureCache.key(corpus, term, config)


@pytest.fixture()
def server(tmp_path):
    instance = CacheServiceServer(
        DiskCacheStore(tmp_path / "cache"), host="127.0.0.1", port=0
    )
    instance.start()
    yield instance
    instance.stop()


class TestWireFormat:
    @pytest.mark.parametrize(
        "vector",
        [
            np.arange(5.0),
            np.zeros((2, 3), dtype=np.float32),
            np.array(3.5),  # 0-d
            np.array([], dtype=np.float64),
            np.arange(6, dtype=np.int32).reshape(3, 2),
        ],
    )
    def test_vector_roundtrip(self, vector):
        headers, body = encode_vector(vector)
        decoded = decode_vector(
            headers["X-Repro-Dtype"],
            headers["X-Repro-Shape"],
            headers["X-Repro-Crc"],
            body,
        )
        np.testing.assert_array_equal(decoded, vector)
        assert decoded.dtype == vector.dtype
        assert decoded.shape == vector.shape

    def test_decode_rejects_corruption(self):
        headers, body = encode_vector(np.arange(4.0))
        dtype = headers["X-Repro-Dtype"]
        shape = headers["X-Repro-Shape"]
        crc = headers["X-Repro-Crc"]
        assert decode_vector(None, shape, crc, body) is None
        assert decode_vector(dtype, None, crc, body) is None
        assert decode_vector(dtype, shape, None, body) is None
        assert decode_vector(dtype, "7", crc, body) is None  # wrong length
        assert decode_vector(dtype, shape, "1", body) is None  # wrong crc
        assert decode_vector(dtype, shape, crc, body[:-3]) is None  # torn
        assert decode_vector("not-a-dtype", shape, crc, body) is None
        assert decode_vector(dtype, "a,b", crc, body) is None

    def test_key_roundtrip_survives_unicode_and_separators(self):
        original = ("fp/with?odd&chars", "véso-constriction du cœur", "w=10;&x")
        assert decode_key(encode_key(original)) == original

    def test_incomplete_key_is_none(self):
        assert decode_key("corpus=a&term=b") is None
        assert decode_key("") is None

    def test_key_batch_roundtrip(self):
        keys = [key(term=f"term {i}") for i in range(5)] + [
            ("fp/with?odd&chars", "cœur", "w=10;&x")
        ]
        assert decode_key_batch(encode_key_batch(keys)) == keys
        assert decode_key_batch(encode_key_batch([])) == []

    def test_key_batch_rejects_corruption(self):
        frame = encode_key_batch([key()])
        assert decode_key_batch(frame[:-1]) is None  # torn
        assert decode_key_batch(b"XXXX" + frame[4:]) is None  # magic
        assert decode_key_batch(frame + b"junk") is None  # trailing

    def test_vector_batch_roundtrip_with_in_band_misses(self):
        entries = [
            (key(term="a"), np.arange(5.0)),
            (key(term="miss"), None),
            (key(term="b"), np.zeros((2, 3), dtype=np.float32)),
        ]
        decoded = decode_vector_batch(encode_vector_batch(entries))
        assert decoded is not None
        assert [k for k, _ in decoded] == [k for k, _ in entries]
        np.testing.assert_array_equal(decoded[0][1], entries[0][1])
        assert decoded[1][1] is None
        np.testing.assert_array_equal(decoded[2][1], entries[2][1])
        assert decoded[2][1].dtype == np.float32

    def test_vector_batch_rejects_corruption(self):
        frame = encode_vector_batch([(key(), np.arange(4.0))])
        assert decode_vector_batch(frame[:-2]) is None  # torn body
        corrupt = frame[:-1] + bytes([frame[-1] ^ 0xFF])  # bad crc
        assert decode_vector_batch(corrupt) is None
        assert decode_vector_batch(b"XXXX" + frame[4:]) is None


class TestServerRoutes:
    def test_healthz_and_stats(self, server):
        client = ServiceClient(server.url)
        assert client.healthz()["status"] == "ok"
        stats = client.stats()
        assert stats["entries"] == 0
        assert stats["requests"] >= 1

    def test_vector_roundtrip_and_counters(self, server):
        remote = RemoteCacheStore(server.url)
        assert remote.get(key()) is None  # honest miss: no error counted
        vec = np.random.default_rng(0).normal(size=17)
        remote.put(key(), vec)
        np.testing.assert_array_equal(remote.get(key()), vec)
        assert len(remote) == 1
        stats = remote.stats()
        assert stats["remote_hits"] == 1
        assert stats["remote_errors"] == 0
        assert stats["store_bytes"] > 0
        server_stats = ServiceClient(server.url).stats()
        assert server_stats["vector_gets"] == 2
        assert server_stats["vector_puts"] == 1
        assert server_stats["vector_hits"] == 1

    def test_vectors_persist_in_the_backing_disk_store(self, server, tmp_path):
        remote = RemoteCacheStore(server.url)
        vec = np.arange(9.0)
        remote.put(key("persisted term"), vec)
        # A direct disk handle on the served directory sees the entry.
        direct = DiskCacheStore(tmp_path / "cache")
        np.testing.assert_array_equal(direct.get(key("persisted term")), vec)

    def test_clear_empties_the_store(self, server):
        remote = RemoteCacheStore(server.url)
        remote.put(key(), np.arange(3.0))
        assert len(remote) == 1
        remote.clear()
        assert len(remote) == 0
        assert remote.get(key()) is None

    def test_cache_info_route(self, server):
        RemoteCacheStore(server.url).put(key(), np.arange(3.0))
        info = ServiceClient(server.url).cache_info()
        assert info["entries"] == 1
        assert info["n_generations"] == 1
        assert info["generations"][0]["shards"] == 1
        assert info["eviction_order"] == [info["generations"][0]["name"]]

    def test_unknown_routes_404(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError, match="404"):
            client._json("GET", "/nope")
        with pytest.raises(ServiceError, match="404"):
            client._json("POST", "/nope")

    def test_error_responses_keep_the_connection_usable(self, server):
        """Error paths must drain request bodies: an undrained PUT body
        would desynchronise the keep-alive stream and poison every
        later request on the same connection."""
        remote = RemoteCacheStore(server.url)
        headers, body = encode_vector(np.arange(16.0))
        # PUT with a body but no key params → 400, body drained.
        result = remote._channel.request(
            "PUT", "/cache/vector", body=body, headers=headers
        )
        assert result[0] == 400
        # PUT with a body to an unknown route → 404, body drained.
        result = remote._channel.request(
            "PUT", "/nope", body=body, headers=headers
        )
        assert result[0] == 404
        # POST with a body to an unknown route → 404, body drained.
        result = remote._channel.request(
            "POST", "/nope", body=b"{}",
            headers={"Content-Type": "application/json"},
        )
        assert result[0] == 404
        # The same connection must still serve a real request cleanly.
        vec = np.arange(3.0)
        remote.put(key("after errors"), vec)
        np.testing.assert_array_equal(remote.get(key("after errors")), vec)
        assert remote.stats()["remote_errors"] == 0

    def test_bad_vector_requests_400(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError, match="400"):
            client._json("GET", "/cache/vector?corpus=a")  # incomplete key
        remote = RemoteCacheStore(server.url)
        # A PUT whose CRC does not match its body is rejected server-side
        # and the client records the failure without raising.
        result = remote._channel.request(
            "PUT",
            "/cache/vector?" + encode_key(key()),
            body=b"\x00" * 16,
            headers={
                "X-Repro-Dtype": "<f8",
                "X-Repro-Shape": "2",
                "X-Repro-Crc": "12345",
            },
        )
        assert result[0] == 400
        assert len(remote) == 0


class TestRemoteCacheStoreProtocol:
    def test_satisfies_the_cache_store_protocol(self, server):
        assert isinstance(RemoteCacheStore(server.url), CacheStore)

    def test_pickles_to_its_url(self, server):
        remote = RemoteCacheStore(server.url, timeout=2.5)
        remote.put(key(), np.arange(4.0))
        clone = pickle.loads(pickle.dumps(remote))
        assert clone.base_url == server.url
        assert clone.timeout == 2.5
        np.testing.assert_array_equal(clone.get(key()), np.arange(4.0))

    def test_bare_host_port_accepted(self, server):
        remote = RemoteCacheStore(f"127.0.0.1:{server.port}")
        remote.put(key(), np.arange(2.0))
        assert remote.stats()["remote_errors"] == 0

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValidationError, match="http"):
            RemoteCacheStore("https://secure:1")
        with pytest.raises(ValidationError, match="host"):
            RemoteCacheStore("http://")
        with pytest.raises(ValidationError, match="timeout"):
            RemoteCacheStore("http://127.0.0.1:1", timeout=0)
        with pytest.raises(ValidationError, match="port"):
            RemoteCacheStore("http://h:99999")  # out of range
        with pytest.raises(ValidationError, match="port"):
            RemoteCacheStore("http://h:abc")

    def test_misrouted_url_counts_as_error_not_miss(self, server):
        """A 404 without the service's miss marker (wrong path prefix,
        wrong server) is a misconfiguration, not a cold cache."""
        misrouted = RemoteCacheStore(server.url + "/wrong-prefix")
        assert misrouted.get(key()) is None
        assert misrouted.stats()["remote_errors"] == 1
        # The genuine service miss stays error-free.
        honest = RemoteCacheStore(server.url)
        assert honest.get(key("absent")) is None
        assert honest.stats()["remote_errors"] == 0

    def test_failed_clear_keeps_the_counters(self):
        import socket as socket_mod

        with socket_mod.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        store = RemoteCacheStore(f"http://127.0.0.1:{port}", timeout=0.5)
        assert store.get(key()) is None
        assert store.stats()["remote_errors"] == 1
        store.clear()  # fails: nothing listening
        # The failure is recorded, not wiped by the reset-on-success.
        assert store.stats()["remote_errors"] == 2

    def test_feature_cache_merges_remote_counters(self, server):
        cache = FeatureCache(store=RemoteCacheStore(server.url))
        assert cache.lookup(key()) is None
        cache.store(key(), np.arange(3.0))
        assert cache.lookup(key()) is not None
        stats = cache.stats
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["remote_hits"] == 1
        assert stats["remote_errors"] == 0
        assert stats["disk_hits"] == 0

    def test_worker_hits_merge_onto_the_remote_counter(self, server):
        cache = FeatureCache(store=RemoteCacheStore(server.url))
        cache.absorb_worker_hits(7)
        stats = cache.stats
        assert stats["remote_hits"] == 7
        assert stats["disk_hits"] == 0


class TestConfigValidation:
    def test_cache_url_requires_feature_cache(self):
        with pytest.raises(ValidationError, match="feature_cache"):
            EnrichmentConfig(cache_url="http://x:1", feature_cache=False)

    def test_cache_url_excludes_cache_dir(self, tmp_path):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            EnrichmentConfig(
                cache_url="http://x:1", cache_dir=str(tmp_path)
            )

    def test_cache_timeout_must_be_positive(self):
        with pytest.raises(ValidationError, match="cache_timeout"):
            EnrichmentConfig(cache_timeout=0)


class TestServedWorkflow:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_enrichment_scenario(
            seed=5, n_concepts=25, docs_per_concept=5,
            polysemy_histogram={2: 4},
        )

    def run(self, scenario, cache_url, **kwargs):
        config = EnrichmentConfig(
            n_candidates=8, cache_url=cache_url, **kwargs
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        return enricher.enrich(scenario.corpus)

    @staticmethod
    def outcome(report):
        return json.dumps(
            [t.to_dict() for t in report.terms], sort_keys=True
        )

    def test_two_runs_share_one_server(self, scenario, server):
        cold = self.run(scenario, server.url)
        assert cold.cache["misses"] > 0
        assert cold.cache["remote_hits"] == 0
        assert cold.cache["remote_errors"] == 0
        warm = self.run(scenario, server.url)  # brand-new enricher
        assert warm.cache["misses"] == 0
        assert warm.cache["remote_hits"] == warm.cache["hits"]
        assert warm.cache["hits"] == cold.cache["misses"]
        assert self.outcome(warm) == self.outcome(cold)

    def test_dead_server_degrades_to_misses(self, scenario, tmp_path):
        live = CacheServiceServer(
            DiskCacheStore(tmp_path / "dead-cache"), port=0
        )
        live.start()
        cold = self.run(scenario, live.url)
        live.stop()  # killed mid-deployment: connections severed
        dead = self.run(scenario, live.url)
        assert dead.cache["remote_hits"] == 0
        assert dead.cache["remote_errors"] > 0
        assert dead.cache["misses"] > 0
        # Degradation changes only the cache economics, never the output.
        assert self.outcome(dead) == self.outcome(cold)

    def test_process_pool_workers_read_the_service(self, scenario, server):
        cold = self.run(scenario, server.url)
        process = self.run(
            scenario, server.url, n_workers=2,
            worker_backend="process", batch_size=2,
        )
        assert process.cache["misses"] == 0
        assert process.cache["hits"] == cold.cache["misses"]
        assert process.cache["remote_hits"] == process.cache["hits"]
        assert self.outcome(process) == self.outcome(cold)

    def test_worker_remote_errors_are_merged_back(self, scenario, tmp_path):
        live = CacheServiceServer(
            DiskCacheStore(tmp_path / "short-lived"), port=0
        )
        live.start()
        baseline = self.run(scenario, live.url)
        live.stop()
        dead = self.run(
            scenario, live.url, n_workers=2,
            worker_backend="process", batch_size=2, cache_timeout=0.5,
        )
        sequential = self.run(scenario, live.url, cache_timeout=0.5)
        assert self.outcome(dead) == self.outcome(baseline)
        assert self.outcome(sequential) == self.outcome(baseline)
        # The batching parent pays O(chunks) failures (one degraded
        # prefill get_many + one degraded store_many); process workers
        # additionally probe the store per item on their *own* handles,
        # and those failures must ship back — without the merge the
        # process run would count no more errors than a sequential one.
        assert sequential.cache["remote_errors"] > 0
        assert (
            dead.cache["remote_errors"] > sequential.cache["remote_errors"]
        )


class TestEnrichmentJobs:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        scenario = make_enrichment_scenario(
            seed=0, n_concepts=20, docs_per_concept=4
        )
        root = tmp_path_factory.mktemp("served-corpus")
        write_ontology_json(scenario.ontology, root / "ontology.json")
        write_corpus_jsonl(scenario.corpus, root / "corpus.jsonl")
        return root

    @pytest.fixture()
    def job_server(self, tmp_path, corpus_dir):
        instance = CacheServiceServer(
            DiskCacheStore(tmp_path / "cache"),
            port=0,
            corpora={
                "demo": (
                    corpus_dir / "ontology.json",
                    corpus_dir / "corpus.jsonl",
                )
            },
        )
        instance.start()
        yield instance
        instance.stop()

    def test_submit_poll_fetch(self, job_server):
        client = ServiceClient(job_server.url)
        assert client.corpora() == ["demo"]
        job_id = client.submit_job("demo", config={"n_candidates": 5})
        document = client.wait_for_job(job_id, timeout=180)
        assert document["status"] == "done"
        report = document["report"]
        assert report["n_candidates"] == 5
        assert all("term" in row for row in report["terms"])
        # Round two is served warm from the shared store and identical.
        second = client.wait_for_job(
            client.submit_job("demo", config={"n_candidates": 5}),
            timeout=180,
        )
        assert second["report"]["cache"]["misses"] == 0
        assert json.dumps(report["terms"], sort_keys=True) == json.dumps(
            second["report"]["terms"], sort_keys=True
        )

    def test_job_validation_errors_are_http_400(self, job_server):
        client = ServiceClient(job_server.url)
        with pytest.raises(ServiceError, match="unknown corpus"):
            client.submit_job("nope")
        with pytest.raises(ServiceError, match="owned by the service"):
            client.submit_job("demo", config={"cache_dir": "/tmp/x"})
        with pytest.raises(ServiceError, match="owned by the service"):
            # Worker plumbing is locked too: a remote client must not
            # control server-side process fan-out.
            client.submit_job("demo", config={"n_workers": 16})
        with pytest.raises(ServiceError, match="owned by the service"):
            client.submit_job("demo", config={"worker_backend": "process"})
        with pytest.raises(ServiceError, match="unknown config field"):
            client.submit_job("demo", config={"frobnicate": 1})
        with pytest.raises(ServiceError, match="404"):
            client.job("job-999999")
        # Falsy non-objects must not slip through as "no overrides".
        with pytest.raises(ServiceError, match="must be an object"):
            client._json(
                "POST", "/jobs",
                payload={"corpus": "demo", "config": []},
                expect=(202,),
            )

    def test_finished_jobs_are_pruned_past_the_cap(self, corpus_dir):
        manager = JobManager(
            {
                "demo": (
                    corpus_dir / "ontology.json",
                    corpus_dir / "corpus.jsonl",
                )
            },
            max_finished_jobs=2,
        )
        try:
            ids = [
                manager.submit("demo", {"n_candidates": 2})
                for _ in range(4)
            ]
            deadline = time.monotonic() + 300
            while any(
                (manager.job(i) or {"status": "gone"})["status"]
                in ("queued", "running")
                for i in ids
            ):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            manager.submit("demo", {"n_candidates": 2})  # triggers pruning
            retained = [i for i in ids if manager.job(i) is not None]
            # Only the cap's worth of *finished* jobs survives; the
            # oldest were dropped.
            assert len(retained) == 2
            assert retained == ids[-2:]
        finally:
            manager.shutdown(wait=True)

    def test_failed_job_reports_not_raises(self, tmp_path):
        manager = JobManager(
            {"broken": (tmp_path / "missing.json", tmp_path / "missing.jsonl")}
        )
        try:
            job_id = manager.submit("broken")
            deadline = 100
            while manager.job(job_id)["status"] in ("queued", "running"):
                deadline -= 1
                assert deadline > 0, "job never finished"
                time.sleep(0.05)
            document = manager.job(job_id)
            assert document["status"] == "failed"
            assert "error" in document
        finally:
            manager.shutdown()

    def test_job_boundary_survives_exotic_exceptions(self, tmp_path):
        """The broad except in JobManager._run is the isolation
        boundary: any Exception subclass out of workflow code becomes a
        pollable failure, and the worker keeps serving later jobs."""

        class ExoticError(Exception):
            pass

        manager = JobManager(
            {"demo": (tmp_path / "o.json", tmp_path / "c.jsonl")}
        )
        original_load = manager._load
        calls = {"n": 0}

        def flaky_load(name):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ExoticError("surprise from deep inside a stage")
            return original_load(name)

        manager._load = flaky_load
        try:
            job_id = manager.submit("demo")
            deadline = 100
            while manager.job(job_id)["status"] in ("queued", "running"):
                deadline -= 1
                assert deadline > 0, "job never finished"
                time.sleep(0.05)
            document = manager.job(job_id)
            assert document["status"] == "failed"
            assert "ExoticError" in document["error"]
            # The worker thread survived: a second submission runs (it
            # fails on the missing files, but it *runs*).
            second = manager.submit("demo", {"seed": 1})
            deadline = 100
            while manager.job(second)["status"] in ("queued", "running"):
                deadline -= 1
                assert deadline > 0, "second job never finished"
                time.sleep(0.05)
            assert calls["n"] == 2
        finally:
            manager.shutdown()

    def test_jobs_listing_is_newest_first(self, job_server):
        client = ServiceClient(job_server.url)
        first = client.submit_job("demo", config={"n_candidates": 3})
        second = client.submit_job("demo", config={"n_candidates": 3})
        client.wait_for_job(first, timeout=180)
        client.wait_for_job(second, timeout=180)
        listing = client._json("GET", "/jobs")["jobs"]
        assert [job["job"] for job in listing[:2]] == [second, first]


class TestStreamingDeltas:
    """The continuous-enrichment surface: POST documents, poll deltas."""

    @pytest.fixture(scope="class")
    def stream_dir(self, tmp_path_factory):
        scenario = make_enrichment_scenario(
            seed=0, n_concepts=20, docs_per_concept=4
        )
        root = tmp_path_factory.mktemp("streamed-corpus")
        write_ontology_json(scenario.ontology, root / "ontology.json")
        write_corpus_jsonl(scenario.corpus, root / "corpus.jsonl")
        return root

    @pytest.fixture(scope="class")
    def delta_server(self, tmp_path_factory, stream_dir):
        """A server with one completed delta (shared: deltas accumulate)."""
        root = tmp_path_factory.mktemp("delta-server")
        instance = CacheServiceServer(
            DiskCacheStore(root / "cache"),
            port=0,
            corpora={
                "demo": (
                    stream_dir / "ontology.json",
                    stream_dir / "corpus.jsonl",
                )
            },
            index_dir=root / "indexes",
        )
        instance.start()
        client = ServiceClient(instance.url)
        job_id, replayed = client.post_documents(
            "demo",
            [{"doc_id": "late-1", "sentences": [["zzqx", "wwvk", "ggph"]]}],
            idempotency_key="delta-1",
        )
        assert not replayed
        document = client.wait_for_job(job_id, timeout=300)
        yield instance, client, document
        client.close()
        instance.stop()

    def test_delta_job_lifecycle(self, delta_server):
        __, ___, document = delta_server
        assert document["kind"] == "delta"
        assert document["status"] == "done"
        report = document["report"]
        assert report["documents"] == ["late-1"]
        assert report["seq"] >= 1
        assert report["base_fingerprint"] != report["fingerprint"]
        # The padding tokens match no known term: everything came warm.
        assert report["n_recomputed"] == 0
        assert report["cache"]["misses"] == 0
        assert report["cache"]["hits"] > 0

    def test_deltas_route_serves_the_history(self, delta_server):
        __, client, document = delta_server
        deltas = client.deltas("demo")
        seqs = [delta["seq"] for delta in deltas]
        assert document["report"]["seq"] in seqs
        assert seqs == sorted(seqs)
        assert all(delta["job"].startswith("job-") for delta in deltas)
        # since= filters strictly.
        latest = max(seqs)
        assert client.deltas("demo", since=latest) == []

    def test_replay_does_not_grow_the_corpus_twice(self, delta_server):
        __, client, document = delta_server
        before = len(client.deltas("demo"))
        job_id, replayed = client.post_documents(
            "demo",
            [{"doc_id": "late-1", "sentences": [["zzqx", "wwvk", "ggph"]]}],
            idempotency_key="delta-1",
        )
        assert replayed
        assert job_id == document["job"]
        assert len(client.deltas("demo")) == before

    def test_full_job_after_delta_sees_the_grown_corpus(self, delta_server):
        """Deltas and full jobs share the loaded corpus and warm cache."""
        __, client, document = delta_server
        full = client.wait_for_job(client.submit_job("demo"), timeout=300)
        report = full["report"]
        terms = {row["term"]: row for row in report["terms"]}
        composedlike = {
            row["term"] for delta in client.deltas("demo")
            for row in delta["added"] + delta["rescored"]
        }
        assert composedlike <= set(terms)
        # The streamer already enriched this exact corpus state: the
        # full run is served entirely from the warm shared cache.
        assert report["cache"]["misses"] == 0

    def test_post_documents_validation(self, delta_server):
        __, client, ___ = delta_server
        with pytest.raises(ServiceError, match="unknown scenario"):
            client.post_documents("nope", [{"doc_id": "x", "text": "y"}])
        with pytest.raises(ServiceError, match="non-empty list"):
            client.post_documents("demo", [])
        with pytest.raises(ServiceError, match="sentences.*or.*text"):
            client.post_documents("demo", [{"doc_id": "x"}])
        with pytest.raises(ServiceError, match="doc_id"):
            client.post_documents("demo", [{"text": "no id"}])
        with pytest.raises(ServiceError, match="already used"):
            client.post_documents(
                "demo",
                [{"doc_id": "other", "text": "different payload"}],
                idempotency_key="delta-1",
            )

    def test_duplicate_document_fails_the_job_not_the_server(
        self, delta_server
    ):
        __, client, ___ = delta_server
        job_id, __ = client.post_documents(
            "demo", [{"doc_id": "late-1", "sentences": [["zzqx"]]}]
        )
        with pytest.raises(ServiceError, match="already in corpus"):
            client.wait_for_job(job_id, timeout=120)
        assert client.healthz()["status"] == "ok"

    def test_deltas_route_404s_unknown_scenario(self, delta_server):
        __, client, ___ = delta_server
        with pytest.raises(ServiceError, match="unknown scenario"):
            client.deltas("nope")

    def test_delta_metrics_are_exposed(self, delta_server):
        __, client, ___ = delta_server
        text = client.metrics()
        assert 'repro_delta_seconds_count{corpus="demo"}' in text
        assert 'route="/scenarios/{name}/documents"' in text
        assert 'route="/scenarios/{name}/deltas"' in text

    def test_watch_cli_follows_the_stream(self, delta_server, capsys):
        from repro.cli import main

        instance, __, ___ = delta_server
        assert main(
            ["watch", "--url", instance.url, "demo", "--once"]
        ) == 0
        out = capsys.readouterr().out
        assert "delta #" in out
        assert "recomputed=" in out


class TestDirectoryWatcher:
    """Watched-directory ingestion into the delta path (no HTTP)."""

    @pytest.fixture()
    def manager_dir(self, tmp_path):
        scenario = make_enrichment_scenario(
            seed=0, n_concepts=20, docs_per_concept=4
        )
        write_ontology_json(scenario.ontology, tmp_path / "ontology.json")
        write_corpus_jsonl(scenario.corpus, tmp_path / "corpus.jsonl")
        manager = JobManager(
            {"demo": (tmp_path / "ontology.json", tmp_path / "corpus.jsonl")}
        )
        yield manager, tmp_path
        manager.shutdown(wait=True)

    @staticmethod
    def wait_done(manager, job_id, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            document = manager.job(job_id)
            if document["status"] in ("done", "failed"):
                return document
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")

    def test_dropped_file_becomes_a_delta(self, manager_dir):
        from repro.service.watcher import DirectoryWatcher

        manager, tmp_path = manager_dir
        drop = tmp_path / "drop"
        watcher = DirectoryWatcher(manager, "demo", drop)
        assert watcher.scan_once() == []
        (drop / "batch-1.jsonl").write_text(
            json.dumps({"doc_id": "w-1", "sentences": [["zzqx", "wwvk"]]})
            + "\n"
            + json.dumps({"doc_id": "w-2", "text": "More padding text."})
            + "\n"
        )
        submitted = watcher.scan_once()
        assert len(submitted) == 1
        document = self.wait_done(manager, submitted[0])
        assert document["status"] == "done"
        assert document["report"]["documents"] == ["w-1", "w-2"]
        # Unchanged file: nothing new on the next scan.
        assert watcher.scan_once() == []
        # Same content re-dropped (touched): replays the original job.
        (drop / "batch-1.jsonl").touch()
        import os

        os.utime(drop / "batch-1.jsonl", (time.time() + 5, time.time() + 5))
        assert watcher.scan_once() == [submitted[0]]
        assert len(manager.deltas("demo")) == 1

    def test_malformed_file_is_recorded_not_fatal(self, manager_dir):
        from repro.service.watcher import DirectoryWatcher

        manager, tmp_path = manager_dir
        drop = tmp_path / "drop"
        watcher = DirectoryWatcher(manager, "demo", drop)
        (drop / "bad.jsonl").write_text("{not json\n")
        assert watcher.scan_once() == []
        assert watcher.errors and "bad.jsonl" in watcher.errors[0]

    def test_background_thread_starts_and_stops(self, manager_dir):
        from repro.service.watcher import DirectoryWatcher

        manager, tmp_path = manager_dir
        watcher = DirectoryWatcher(
            manager, "demo", tmp_path / "drop", poll_seconds=0.05
        )
        watcher.start()
        with pytest.raises(ValidationError, match="already started"):
            watcher.start()
        (tmp_path / "drop" / "late.jsonl").write_text(
            json.dumps({"doc_id": "bg-1", "sentences": [["zzqx"]]}) + "\n"
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not manager.deltas("demo"):
            time.sleep(0.05)
        watcher.stop()
        deltas = manager.deltas("demo")
        assert [delta["documents"] for delta in deltas] == [["bg-1"]]


class TestRecommendRoute:
    """POST /recommend against a live server with registered ontologies."""

    @pytest.fixture(scope="class")
    def assets(self, tmp_path_factory):
        from repro.ontology.model import Concept, Ontology

        root = tmp_path_factory.mktemp("recommend-assets")
        scenario = make_enrichment_scenario(
            seed=0, n_concepts=20, docs_per_concept=4
        )
        write_ontology_json(scenario.ontology, root / "full.json")
        write_corpus_jsonl(scenario.corpus, root / "corpus.jsonl")
        flat = Ontology("flat")
        for i, concept in enumerate(scenario.ontology):
            if i >= 5:
                break
            flat.add_concept(
                Concept(f"F{i}", concept.preferred_term)
            )
        write_ontology_json(flat, root / "flat.json")
        sample = " ".join(
            concept.preferred_term
            for i, concept in enumerate(scenario.ontology)
            if i < 8
        )
        (root / "input.txt").write_text(sample)
        return root

    @pytest.fixture(scope="class")
    def recommend_server(self, tmp_path_factory, assets):
        instance = CacheServiceServer(
            DiskCacheStore(tmp_path_factory.mktemp("recommend-cache")),
            port=0,
            corpora={
                "demo": (assets / "full.json", assets / "corpus.jsonl")
            },
            ontologies={
                "full": assets / "full.json",
                "flat": assets / "flat.json",
            },
        )
        instance.start()
        yield instance
        instance.stop()

    def test_sync_text_ranks_both(self, recommend_server, assets):
        client = ServiceClient(recommend_server.url)
        document = client.recommend(
            text=(assets / "input.txt").read_text(), mode="sync"
        )
        names = [entry["name"] for entry in document["ranking"]]
        assert sorted(names) == ["flat", "full"]
        assert names[0] == "full"  # hierarchy + synonyms outscore flat
        for entry in document["ranking"]:
            assert set(entry["scores"]) == {
                "coverage", "acceptance", "detail", "specialization"
            }
        assert document["input"]["acceptance_source"] is None

    def test_corpus_job_and_idempotent_replay(self, recommend_server):
        client = ServiceClient(recommend_server.url)
        first = client.recommend(
            corpus="demo", idempotency_key="rec-demo-1"
        )
        assert "job" in first
        document = client.wait_for_job(first["job"], timeout=120)
        assert document["status"] == "done"
        report = document["report"]
        assert report["input"]["kind"] == "corpus"
        assert report["input"]["acceptance_source"] == "input"
        replay = client.recommend(
            corpus="demo", idempotency_key="rec-demo-1"
        )
        assert replay["job"] == first["job"]
        assert replay["replayed"] is True

    def test_malformed_payloads_are_400(self, recommend_server):
        client = ServiceClient(recommend_server.url)
        with pytest.raises(ServiceError, match="exactly one"):
            client.recommend(mode="sync")
        with pytest.raises(ServiceError, match="exactly one"):
            client.recommend(text="x", corpus="demo")
        with pytest.raises(ServiceError, match="unknown recommend config"):
            client.recommend(text="x", config={"bogus_knob": 1}, mode="sync")

    def test_unknown_names_are_404(self, recommend_server):
        client = ServiceClient(recommend_server.url)
        with pytest.raises(ServiceError, match="unknown ontology"):
            client.recommend(text="x", ontologies=["nope"], mode="sync")
        with pytest.raises(ServiceError, match="unknown corpus"):
            client.recommend(corpus="ghost")

    def test_cli_and_service_documents_are_byte_identical(
        self, recommend_server, assets, capsys
    ):
        import urllib.request

        from repro.cli import main

        code = main(
            [
                "recommend",
                "--ontology", f"flat={assets / 'flat.json'}",
                "--ontology", f"full={assets / 'full.json'}",
                "--text", str(assets / "input.txt"),
                "--format", "json",
            ]
        )
        assert code == 0
        cli_bytes = capsys.readouterr().out.rstrip("\n").encode()
        request = urllib.request.Request(
            recommend_server.url + "/recommend",
            data=json.dumps(
                {
                    "text": (assets / "input.txt").read_text(),
                    "mode": "sync",
                }
            ).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            service_bytes = response.read()
        assert cli_bytes == service_bytes

    def test_recommend_metrics_exported(self, recommend_server, assets):
        client = ServiceClient(recommend_server.url)
        client.recommend(
            text=(assets / "input.txt").read_text(), mode="sync"
        )
        text = client.metrics()
        assert 'repro_recommend_seconds_count{mode="sync"}' in text
        assert 'repro_recommend_score_count{criterion="coverage"}' in text

    def test_no_registered_ontologies_is_400(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError, match="no ontologies registered"):
            client.recommend(text="x", mode="sync")
