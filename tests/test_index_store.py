"""On-disk corpus index store: mmap parity, corruption, pickling.

The tentpole contract of :mod:`repro.corpus.index_store`:

* an :class:`MmapCorpusIndex` reopened from a persisted generation is
  byte-identical to the in-memory :class:`CorpusIndex` it came from —
  every query method AND the content fingerprint chain;
* process-pool workers receive a picklable *path handle* (a few hundred
  bytes) instead of the postings themselves;
* any corruption — truncation, flipped bytes, a torn manifest, version
  skew, a missing file — makes :meth:`IndexStore.open` raise and
  :meth:`IndexStore.load_or_build` degrade to a clean rebuild: never a
  wrong answer.
"""

import pickle
import random

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
from repro.corpus.index_store import (
    IndexStore,
    IndexStoreError,
    MmapCorpusIndex,
    build_sharded_index,
)
from repro.errors import CorpusError
from test_index_sharded import (
    assert_full_parity,
    random_documents,
    random_terms,
)


def build_store(tmp_path, docs):
    store = IndexStore(tmp_path / "store")
    index = CorpusIndex(docs)
    store.save(index)
    return store, index


class TestMmapParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_single_generation_full_parity(self, tmp_path, seed):
        rng = random.Random(seed)
        docs = random_documents(rng, n_docs=11)
        store, reference = build_store(tmp_path, docs)
        opened = store.open(reference.fingerprint())
        assert isinstance(opened, MmapCorpusIndex)
        assert_full_parity(opened, reference, random_terms(rng))

    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_sharded_generation_full_parity(self, tmp_path, n_shards):
        rng = random.Random(n_shards)
        docs = random_documents(rng, n_docs=10)
        reference = CorpusIndex(docs)
        store = IndexStore(tmp_path / "store")
        store.save(ShardedCorpusIndex(docs, n_shards=n_shards))
        opened = store.open(reference.fingerprint())
        assert isinstance(opened, ShardedCorpusIndex)
        assert all(
            isinstance(shard, MmapCorpusIndex) for shard in opened.shards()
        )
        assert_full_parity(opened, reference, random_terms(rng))

    def test_process_pool_shard_build_parity(self, tmp_path):
        rng = random.Random(7)
        docs = random_documents(rng, n_docs=12)
        reference = CorpusIndex(docs)
        built = build_sharded_index(
            docs,
            tmp_path / "gen",
            n_shards=3,
            n_workers=2,
            build_backend="process",
        )
        assert_full_parity(built, reference, random_terms(rng))

    def test_empty_corpus_round_trips(self, tmp_path):
        store, reference = build_store(tmp_path, [])
        opened = store.open(reference.fingerprint())
        assert opened.n_documents() == 0
        assert opened.fingerprint() == reference.fingerprint()
        assert opened.term_frequency("a") == 0

    def test_extend_fingerprint_matches(self, tmp_path):
        docs = random_documents(random.Random(3))
        store, reference = build_store(tmp_path, docs)
        opened = store.open(reference.fingerprint())
        # Continuing the hash chain through the mmap view must produce
        # the same value as through the in-memory postings.
        assert opened.extend_fingerprint("0" * 40) == \
            reference.extend_fingerprint("0" * 40)
        assert opened.extend_fingerprint(reference.fingerprint()) == \
            reference.extend_fingerprint(reference.fingerprint())

    def test_mmap_handle_is_read_only(self, tmp_path):
        docs = random_documents(random.Random(0))
        store, reference = build_store(tmp_path, docs)
        opened = store.open(reference.fingerprint())
        opened.add_documents([])  # no-op is allowed
        with pytest.raises(CorpusError, match="read-only"):
            opened.add_documents([Document("x", [["a"]])])
        with pytest.raises(CorpusError, match="mmap"):
            store.save(opened)


class TestPickling:
    def test_pickle_is_a_path_handle(self, tmp_path):
        rng = random.Random(5)
        docs = random_documents(rng, n_docs=14)
        store, reference = build_store(tmp_path, docs)
        opened = store.open(reference.fingerprint())
        payload = pickle.dumps(opened)
        assert len(payload) < 4 * len(pickle.dumps(reference))
        assert len(payload) < 1024
        clone = pickle.loads(payload)
        assert_full_parity(clone, reference, random_terms(rng))

    def test_sharded_mmap_pickles(self, tmp_path):
        rng = random.Random(6)
        docs = random_documents(rng, n_docs=9)
        reference = CorpusIndex(docs)
        store = IndexStore(tmp_path / "store")
        store.save(ShardedCorpusIndex(docs, n_shards=3))
        opened = store.open(reference.fingerprint(), n_workers=2)
        clone = pickle.loads(pickle.dumps(opened))
        assert_full_parity(clone, reference, random_terms(rng))


def _one_array_file(generation):
    """Some persisted payload file of a generation (not the manifest)."""
    candidates = sorted(
        p for p in generation.rglob("*")
        if p.is_file() and p.name != "manifest.json" and p.stat().st_size > 0
    )
    assert candidates
    return candidates[0]


class TestCorruption:
    @pytest.fixture()
    def stored(self, tmp_path):
        docs = random_documents(random.Random(1), n_docs=8)
        store, reference = build_store(tmp_path, docs)
        return store, reference, docs

    def test_truncated_file_fails_verification(self, stored):
        store, reference, _ = stored
        target = _one_array_file(store.path_for(reference.fingerprint()))
        with open(target, "r+b") as fh:
            fh.truncate(max(0, target.stat().st_size - 7))
        with pytest.raises(IndexStoreError):
            store.open(reference.fingerprint())

    def test_flipped_byte_fails_crc(self, stored):
        store, reference, _ = stored
        target = _one_array_file(store.path_for(reference.fingerprint()))
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(IndexStoreError):
            store.open(reference.fingerprint())

    def test_missing_manifest_is_corrupt(self, stored):
        store, reference, _ = stored
        (store.path_for(reference.fingerprint()) / "manifest.json").unlink()
        with pytest.raises(IndexStoreError):
            store.open(reference.fingerprint())

    def test_torn_manifest_is_corrupt(self, stored):
        store, reference, _ = stored
        manifest = store.path_for(reference.fingerprint()) / "manifest.json"
        manifest.write_text(manifest.read_text()[: manifest.stat().st_size // 2])
        with pytest.raises(IndexStoreError):
            store.open(reference.fingerprint())

    def test_version_skew_is_corrupt(self, stored):
        store, reference, _ = stored
        manifest = store.path_for(reference.fingerprint()) / "manifest.json"
        manifest.write_text(
            manifest.read_text().replace('"version": 1', '"version": 999')
        )
        with pytest.raises(IndexStoreError):
            store.open(reference.fingerprint())

    def test_missing_file_is_corrupt(self, stored):
        store, reference, _ = stored
        _one_array_file(store.path_for(reference.fingerprint())).unlink()
        with pytest.raises(IndexStoreError):
            store.open(reference.fingerprint())

    def test_unknown_fingerprint_misses(self, stored):
        store, _, _ = stored
        with pytest.raises(IndexStoreError, match="no stored index"):
            store.open("0" * 40)

    def test_load_or_build_rebuilds_after_corruption(self, stored):
        store, reference, docs = stored
        rng = random.Random(2)
        target = _one_array_file(store.path_for(reference.fingerprint()))
        blob = bytearray(target.read_bytes())
        blob[0] ^= 0xFF
        target.write_bytes(bytes(blob))
        rebuilt = store.load_or_build(docs)
        assert isinstance(rebuilt, MmapCorpusIndex)
        assert_full_parity(rebuilt, reference, random_terms(rng))
        # The replaced generation is clean again.
        assert_full_parity(
            store.open(reference.fingerprint()), reference, random_terms(rng)
        )

    def test_load_or_build_rebuilds_sharded_after_corruption(self, tmp_path):
        rng = random.Random(9)
        docs = random_documents(rng, n_docs=10)
        reference = CorpusIndex(docs)
        store = IndexStore(tmp_path / "store")
        store.save(ShardedCorpusIndex(docs, n_shards=3))
        target = _one_array_file(store.path_for(reference.fingerprint()))
        with open(target, "r+b") as fh:
            fh.truncate(1)
        rebuilt = store.load_or_build(docs, n_shards=3, n_workers=2)
        assert isinstance(rebuilt, ShardedCorpusIndex)
        assert_full_parity(rebuilt, reference, random_terms(rng))

    def test_unwritable_store_degrades_to_in_memory(
        self, tmp_path, monkeypatch
    ):
        docs = random_documents(random.Random(4))
        reference = CorpusIndex(docs)
        store = IndexStore(tmp_path / "store")

        def refuse(index):
            raise OSError("disk full")

        monkeypatch.setattr(store, "save", refuse)
        index = store.load_or_build(docs)
        # No generation could be written, but the answer is served.
        assert not isinstance(index, MmapCorpusIndex)
        assert_full_parity(index, reference, random_terms(random.Random(4)))
        assert store.fingerprints() == []


class TestLoadOrBuild:
    def test_miss_builds_and_persists(self, tmp_path):
        docs = random_documents(random.Random(8))
        store = IndexStore(tmp_path / "store")
        assert store.fingerprints() == []
        index = store.load_or_build(docs)
        assert isinstance(index, MmapCorpusIndex)
        assert store.fingerprints() == [index.fingerprint()]

    def test_hit_reopens_same_generation(self, tmp_path):
        docs = random_documents(random.Random(8))
        store = IndexStore(tmp_path / "store")
        first = store.load_or_build(docs)
        marker = store.path_for(first.fingerprint()) / "manifest.json"
        mtime = marker.stat().st_mtime_ns
        second = store.load_or_build(docs)
        assert isinstance(second, MmapCorpusIndex)
        assert marker.stat().st_mtime_ns == mtime  # untouched, not rebuilt
        assert second.fingerprint() == first.fingerprint()

    def test_corpus_object_is_accepted(self, tmp_path):
        docs = random_documents(random.Random(8))
        corpus = Corpus(docs)
        store = IndexStore(tmp_path / "store")
        index = store.load_or_build(corpus)
        assert index.fingerprint() == CorpusIndex(docs).fingerprint()

    def test_describe_reports_generations(self, tmp_path):
        docs = random_documents(random.Random(8))
        store = IndexStore(tmp_path / "store")
        built = store.load_or_build(docs)
        info = store.describe()
        assert info["n_generations"] == 1
        (generation,) = info["generations"]
        assert generation["fingerprint"] == built.fingerprint()
        assert generation["kind"] == "single"
        assert generation["n_documents"] == len(docs)
        assert generation["bytes"] > 0
        # A corrupt generation is reported, not hidden.
        manifest = store.path_for(built.fingerprint()) / "manifest.json"
        manifest.write_text("{not json")
        info = store.describe()
        assert info["generations"][0]["kind"] == "corrupt"


class TestCorpusAdoption:
    def test_adopt_index_caches_the_handle(self, tmp_path):
        docs = random_documents(random.Random(12))
        corpus = Corpus(docs)
        store = IndexStore(tmp_path / "store")
        opened = store.load_or_build(corpus)
        corpus.adopt_index(opened)
        assert corpus.index() is opened

    def test_adopt_rejects_mismatched_index(self, tmp_path):
        docs = random_documents(random.Random(12))
        store = IndexStore(tmp_path / "store")
        opened = store.load_or_build(docs)
        with pytest.raises(CorpusError, match="documents"):
            Corpus(docs[:-1]).adopt_index(opened)

    def test_add_after_adoption_rebuilds_through_the_store(self, tmp_path):
        # Regression: growing past an adopted read-only mmap index used
        # to silently drop it and rebuild in RAM — the new generation
        # was never persisted, so a daemon with --index-dir paid the
        # full rebuild again on every restart.  The rebuild must route
        # through IndexStore.load_or_build instead.
        docs = random_documents(random.Random(12))
        corpus = Corpus(docs)
        store = IndexStore(tmp_path / "store")
        corpus.adopt_index(store.load_or_build(corpus))
        corpus.add(Document("late", [["new", "tokens"]]))
        fresh = corpus.index()
        expected = CorpusIndex(list(corpus))
        assert fresh.n_documents() == len(docs) + 1
        assert fresh.fingerprint() == expected.fingerprint()
        # The grown corpus's generation was persisted and served mmap.
        assert isinstance(fresh, MmapCorpusIndex)
        assert expected.fingerprint() in store.fingerprints()
        # And the cached handle is reused, not rebuilt per query.
        assert corpus.index() is fresh

    def test_adoption_recovers_the_store_from_the_mmap_handle(self, tmp_path):
        # adopt_index without an explicit store= argument must still
        # find the store a mmap handle came from (its own directory).
        docs = random_documents(random.Random(13))
        corpus = Corpus(docs)
        store = IndexStore(tmp_path / "store")
        corpus.adopt_index(store.open(store.save(CorpusIndex(docs)).name))
        corpus.add(Document("late", [["new", "tokens"]]))
        grown = corpus.index()
        assert isinstance(grown, MmapCorpusIndex)
        assert grown.fingerprint() in store.fingerprints()

    def test_sharded_adoption_rebuilds_through_the_store(self, tmp_path):
        docs = random_documents(random.Random(14))
        corpus = Corpus(docs)
        store = IndexStore(tmp_path / "store")
        corpus.adopt_index(store.load_or_build(corpus, n_shards=2))
        corpus.add(Document("late", [["new", "tokens"]]))
        grown = corpus.index()
        expected = CorpusIndex(list(corpus))
        assert grown.n_shards == 2
        assert grown.fingerprint() == expected.fingerprint()
        assert expected.fingerprint() in store.fingerprints()
