"""Tests for repro.ml.importance (permutation feature importance)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ml.importance import permutation_importance, rank_features
from repro.ml.logistic import LogisticRegression
from repro.ml.forest import RandomForestClassifier


def informative_plus_noise(n=200, seed=0):
    """y depends only on feature 0; features 1-3 are noise."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] > 0).astype(int)
    return X, y


class TestPermutationImportance:
    def test_informative_feature_dominates(self):
        X, y = informative_plus_noise()
        model = LogisticRegression().fit(X, y)
        imp = permutation_importance(model, X, y, seed=0)
        assert imp.shape == (4,)
        assert imp[0] == max(imp)
        assert imp[0] > 0.2
        assert all(abs(v) < 0.1 for v in imp[1:])

    def test_works_with_forest(self):
        X, y = informative_plus_noise(seed=1)
        model = RandomForestClassifier(n_estimators=15, seed=0).fit(X, y)
        imp = permutation_importance(model, X, y, n_repeats=3, seed=0)
        assert imp[0] == max(imp)

    def test_deterministic_under_seed(self):
        X, y = informative_plus_noise(seed=2)
        model = LogisticRegression().fit(X, y)
        a = permutation_importance(model, X, y, seed=42)
        b = permutation_importance(model, X, y, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_bad_inputs(self):
        X, y = informative_plus_noise()
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValidationError):
            permutation_importance(model, X, y[:-1])
        with pytest.raises(ValidationError):
            permutation_importance(model, X, y, n_repeats=0)

    def test_custom_scorer(self):
        from repro.ml.metrics import f1_score

        X, y = informative_plus_noise(seed=3)
        model = LogisticRegression().fit(X, y)
        imp = permutation_importance(
            model, X, y, scorer=lambda t, p: f1_score(t, p), seed=0
        )
        assert imp[0] == max(imp)


class TestRankFeatures:
    def test_sorted_descending(self):
        ranked = rank_features(np.array([0.1, 0.5, 0.0]), ("a", "b", "c"))
        assert ranked[0] == ("b", 0.5)
        assert [name for name, __ in ranked] == ["b", "a", "c"]

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            rank_features(np.array([0.1]), ("a", "b"))

    def test_on_polysemy_features_end_to_end(self):
        """The separation features matter as a *group* on the benchmark.

        Individually they mask each other (bisect gain/ratio, cosine
        stats, and graph modularity all encode sense separation), so the
        group permutation is the meaningful probe.
        """
        from repro.corpus.mshwsd import MshWsdSimulator
        from repro.ml.importance import group_permutation_importance
        from repro.ml.preprocessing import StandardScaler
        from repro.polysemy.dataset import build_entity_polysemy_dataset

        sim = MshWsdSimulator(
            n_entities=60,
            sense_distribution={1: 30, 2: 25, 3: 5},
            contexts_per_sense=20,
            contexts_mode="per_entity",
            sense_overlap=0.5,
            background_fraction=0.55,
            seed=0,
        )
        dataset = build_entity_polysemy_dataset(sim.generate())
        scaler = StandardScaler().fit(dataset.X)
        Z = scaler.transform(dataset.X)
        model = RandomForestClassifier(n_estimators=30, seed=0).fit(Z, dataset.y)

        names = list(dataset.feature_names)
        separation = [
            names.index(n)
            for n in ("mean_pairwise_cosine", "std_pairwise_cosine",
                      "bisect_isim_gain", "bisect_isim_ratio",
                      "bisect_balance_gain", "modularity", "n_communities",
                      "community_size_entropy")
        ]
        shape = [names.index(n) for n in ("term_n_tokens", "term_n_chars")]
        drops = group_permutation_importance(
            model, Z, dataset.y,
            {"separation": separation, "term_shape": shape},
            n_repeats=3, seed=0,
        )
        assert drops["separation"] > 0.1
        assert drops["separation"] > drops["term_shape"] + 0.05
