"""The repro.analysis lint engine: rules, pragmas, baseline, CLI.

Each RL rule is demonstrated against a mini-project fixture under
``tests/fixtures/lint/<rule>/`` that seeds deliberate violations next
to the clean patterns the rule must *not* flag; the engine-level tests
cover pragma suppression, baseline round-trips, the JSON report shape,
and the CLI exit codes.  Finally, the repository lints itself with an
empty baseline — the gate CI enforces.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    lint_project,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)
from repro.cli import main as cli_main
from repro.errors import ValidationError

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parents[1]


def findings_for(case, **kwargs):
    return lint_project(FIXTURES / case, **kwargs)


def by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestLockDiscipline:
    def test_seeded_violations_are_caught(self):
        result = findings_for("rl001")
        found = by_rule(result, "RL001")
        messages = [f.message for f in found]
        assert len(found) == 2
        assert any(
            "Counter.bump writes self._count" in m for m in messages
        )
        assert any(
            "Counter._helper writes self._note" in m for m in messages
        )

    def test_clean_patterns_are_not_flagged(self):
        result = findings_for("rl001")
        text = render_text(result)
        # Guarded write, _locked helper, lock-free class: all clean.
        assert "bump_safely" not in text
        assert "_apply_locked" not in text
        assert "Plain" not in text

    def test_findings_carry_location_and_hint(self):
        finding = by_rule(findings_for("rl001"), "RL001")[0]
        assert finding.path == "src/locked.py"
        assert finding.line > 0
        assert "_locked suffix" in finding.hint


class TestDegradeToMiss:
    def test_swallowed_network_error_is_caught(self):
        found = by_rule(findings_for("rl002"), "RL002")
        assert len(found) == 1
        assert found[0].message.startswith("except handler for (OSError)")

    def test_accounted_escalated_teardown_and_pragma_pass(self):
        result = findings_for("rl002")
        assert result.suppressed == 1  # fetch_pragma's disable=RL002
        lines = {f.line for f in by_rule(result, "RL002")}
        text = (FIXTURES / "rl002" / "src" / "net.py").read_text()
        for marker in ("self.failures += 1", "raise", "sock.close()"):
            offending = next(
                i
                for i, line in enumerate(text.splitlines(), start=1)
                if marker in line
            )
            assert all(abs(line - offending) > 1 for line in lines)


class TestCodecPairing:
    def test_orphan_and_untested_codecs_are_caught(self):
        found = by_rule(findings_for("rl003"), "RL003")
        messages = [f.message for f in found]
        assert len(found) == 3
        assert any(
            "encode_foo has no decode_foo counterpart" in m
            for m in messages
        )
        assert any(
            "encode_baz is not exercised" in m for m in messages
        )
        assert any(
            "decode_baz is not exercised" in m for m in messages
        )

    def test_tested_pair_and_unsuffixed_encode_pass(self):
        text = render_text(findings_for("rl003"))
        assert "encode_bar" not in text
        assert "decode_bar" not in text
        # encode_foo appears only for its missing counterpart, and the
        # suffixless encode() is outside the convention entirely.
        assert "codec function encode_foo is not exercised" not in text
        assert "encode has no" not in text


class TestConfigDrift:
    def test_all_three_drift_directions_are_caught(self):
        found = by_rule(findings_for("rl004"), "RL004")
        messages = [f.message for f in found]
        assert len(found) == 3
        assert any(
            "EnrichmentConfig.beta has no corresponding 'enrich'" in m
            for m in messages
        )
        assert any(
            "EnrichmentConfig.gamma is not mentioned in README.md" in m
            for m in messages
        )
        assert any(
            "flag --delta maps to no EnrichmentConfig field" in m
            for m in messages
        )

    def test_aliases_inversions_and_io_flags_pass(self):
        text = render_text(findings_for("rl004"))
        assert "alpha" not in text  # flagged + documented
        assert "flip" not in text  # reached via --no-flip inversion
        assert "ontology" not in text  # I/O plumbing is exempt
        assert "unrelated" not in text  # other subparser ignored


class TestPickleContract:
    def test_pool_module_and_dispatched_classes_are_caught(self):
        found = by_rule(findings_for("rl005"), "RL005")
        messages = [f.message for f in found]
        assert len(found) == 2
        assert any(
            m.startswith("Holder is reachable") and "self._lock" in m
            for m in messages
        )
        assert any(
            m.startswith("Shipped is reachable") and "self._guard" in m
            for m in messages
        )

    def test_hooked_stateless_and_undispatched_classes_pass(self):
        text = render_text(findings_for("rl005"))
        assert "Safe" not in text  # __getstate__ declares the contract
        assert "Stateless" not in text  # nothing unpicklable held
        assert "Bystander" not in text  # never crosses the pipe


class TestEngine:
    def test_baseline_roundtrip_grandfathers_findings(self, tmp_path):
        first = findings_for("rl001")
        assert not first.clean
        baseline_path = tmp_path / "baseline.json"
        save_baseline(first.findings, baseline_path)
        second = findings_for(
            "rl001", baseline=load_baseline(baseline_path)
        )
        assert second.clean
        assert second.baselined == len(first.findings)

    def test_baseline_matches_by_identity_not_line(self, tmp_path):
        first = findings_for("rl001")
        baseline_path = tmp_path / "baseline.json"
        save_baseline(first.findings, baseline_path)
        baseline = load_baseline(baseline_path)
        shifted = Finding(
            rule=first.findings[0].rule,
            path=first.findings[0].path,
            line=first.findings[0].line + 40,  # unrelated edits above
            message=first.findings[0].message,
        )
        assert shifted.baseline_key in baseline

    def test_malformed_baseline_is_a_validation_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValidationError):
            load_baseline(bad)
        bad.write_text("not json")
        with pytest.raises(ValidationError):
            load_baseline(bad)

    def test_missing_src_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError):
            lint_project(tmp_path)

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "broken.py").write_text("def oops(:\n")
        result = lint_project(tmp_path)
        assert [f.rule for f in result.findings] == ["RL000"]
        assert "does not parse" in result.findings[0].message

    def test_render_json_shape(self):
        document = json.loads(render_json(findings_for("rl002")))
        assert set(document) == {
            "findings", "suppressed", "baselined", "clean",
        }
        assert document["suppressed"] == 1
        assert document["clean"] is False
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "path", "line", "message", "hint"}
        assert finding["rule"] == "RL002"
        assert finding["path"] == "src/net.py"

    def test_findings_are_sorted_and_summarised(self):
        result = findings_for("rl003")
        keys = [(f.path, f.line, f.rule) for f in result.findings]
        assert keys == sorted(keys)
        assert render_text(result).splitlines()[-1] == (
            "3 finding(s), 0 suppressed by pragma, 0 baselined"
        )


class TestCli:
    def test_exit_one_on_findings_zero_when_baselined(
        self, tmp_path, capsys
    ):
        root = str(FIXTURES / "rl001")
        assert cli_main(["lint", "--root", root]) == 1
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", "--root", root, "--write-baseline", str(baseline)]
            )
            == 0
        )
        assert (
            cli_main(
                ["lint", "--root", root, "--baseline", str(baseline)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "2 baselined" in out

    def test_json_format_and_usage_errors(self, tmp_path, capsys):
        root = str(FIXTURES / "rl002")
        assert cli_main(["lint", "--root", root, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is False
        assert cli_main(["lint", "--root", str(tmp_path)]) == 2
        assert "no src/ directory" in capsys.readouterr().err

    def test_repository_is_clean_with_no_baseline(self, capsys):
        assert cli_main(["lint", "--root", str(REPO_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
