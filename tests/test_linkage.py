"""Tests for repro.linkage (context index, neighbourhood, linker, evaluation)."""

import numpy as np
import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.pubmed import PubMedSimulator, PubMedSpec
from repro.errors import LinkageError
from repro.lexicon import BioLexicon
from repro.linkage.context import TermContextIndex, find_occurrences
from repro.linkage.evaluation import evaluate_linkage, gold_positions
from repro.linkage.linker import SemanticLinker
from repro.linkage.neighborhood import (
    build_term_graph,
    candidate_positions,
    mesh_neighborhood,
)
from repro.ontology.mesh import make_eye_fragment
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.snapshot import HeldOutTerm, held_out_terms


def simple_corpus():
    return Corpus(
        [
            Document("d1", [["corneal", "injuries", "and", "corneal", "injury",
                             "need", "treatment"]]),
            Document("d2", [["corneal", "injuries", "near", "eye", "injuries",
                             "were", "seen"]]),
            Document("d3", [["unrelated", "text", "about", "amniotic",
                             "membrane", "grafts"]]),
        ]
    )


class TestFindOccurrences:
    def test_single_pass_finds_all_terms(self):
        corpus = simple_corpus()
        occurrences = find_occurrences(
            corpus, ["corneal injuries", "eye injuries", "membrane"], window=3
        )
        assert len(occurrences["corneal injuries"]) == 2
        assert len(occurrences["eye injuries"]) == 1
        assert len(occurrences["membrane"]) == 1

    def test_longest_match_priority(self):
        corpus = Corpus([Document("d", [["corneal", "injury", "report"]])])
        occurrences = find_occurrences(
            corpus, ["corneal injury", "corneal"], window=2
        )
        assert len(occurrences["corneal injury"]) == 1
        # the shorter term does not also fire at the same start position
        assert len(occurrences["corneal"]) == 0

    def test_window_excludes_occurrence_tokens(self):
        corpus = Corpus([Document("d", [["left", "corneal", "injury", "right"]])])
        occurrences = find_occurrences(corpus, ["corneal injury"], window=2)
        assert occurrences["corneal injury"] == [("left", "right")]

    def test_unseen_term_empty(self):
        occurrences = find_occurrences(simple_corpus(), ["ghost term"])
        assert occurrences["ghost term"] == []


class TestTermContextIndex:
    def test_build_and_cosine(self):
        index = TermContextIndex(simple_corpus(), window=5)
        index.build(["corneal injuries", "corneal injury", "amniotic membrane"])
        same = index.cosine("corneal injuries", "corneal injury")
        other = index.cosine("corneal injuries", "amniotic membrane")
        assert same > other

    def test_vector_unit_norm(self):
        index = TermContextIndex(simple_corpus(), window=5)
        index.build(["corneal injuries"])
        assert np.linalg.norm(index.vector("corneal injuries")) == pytest.approx(1.0)

    def test_unbuilt_raises(self):
        index = TermContextIndex(simple_corpus())
        with pytest.raises(LinkageError):
            index.vector("anything")

    def test_unknown_term_raises(self):
        index = TermContextIndex(simple_corpus()).build(["corneal injuries"])
        with pytest.raises(LinkageError):
            index.vector("never indexed")

    def test_n_contexts(self):
        index = TermContextIndex(simple_corpus(), window=3)
        index.build(["corneal injuries", "ghost"])
        assert index.n_contexts("corneal injuries") == 2
        assert index.n_contexts("ghost") == 0


def eye_scenario(seed=0, docs_per_concept=14):
    onto = make_eye_fragment()
    lexicon = BioLexicon(seed=seed)
    sim = PubMedSimulator(
        onto,
        lexicon,
        spec=PubMedSpec(
            mention_prob=0.85, related_mention_prob=0.35, noise_mention_prob=0.05
        ),
        seed=seed,
    )
    corpus = sim.generate_balanced(docs_per_concept)
    return onto, corpus


class TestNeighborhood:
    def test_term_graph_contains_cooccurring_terms(self):
        onto, corpus = eye_scenario()
        graph = build_term_graph(corpus, onto, "corneal injuries")
        assert "corneal injuries" in graph
        assert graph.degree("corneal injuries") > 0

    def test_neighborhood_contains_related_terms(self):
        onto, corpus = eye_scenario()
        graph = build_term_graph(corpus, onto, "corneal injuries")
        positions = mesh_neighborhood(graph, onto, "corneal injuries")
        assert positions
        assert "corneal injuries" not in positions
        joined = " ".join(positions)
        assert "corneal" in joined  # synonyms/fathers present

    def test_expansion_adds_hierarchy_terms(self):
        onto, corpus = eye_scenario()
        graph = build_term_graph(corpus, onto, "corneal injuries")
        bare = mesh_neighborhood(graph, onto, "corneal injuries",
                                 expand_hierarchy=False)
        expanded = mesh_neighborhood(graph, onto, "corneal injuries",
                                     expand_hierarchy=True)
        assert set(bare) <= set(expanded)
        assert len(expanded) >= len(bare)

    def test_unseen_candidate_falls_back_to_all(self):
        onto, corpus = eye_scenario()
        positions = candidate_positions(corpus, onto, "zzz unseen zzz")
        assert set(positions) == set(onto.terms())

    def test_unseen_candidate_without_fallback_raises(self):
        onto, corpus = eye_scenario()
        with pytest.raises(LinkageError):
            candidate_positions(
                corpus, onto, "zzz unseen zzz", fallback_to_all=False
            )


class TestSemanticLinker:
    def test_corneal_injuries_table3_shape(self):
        onto, corpus = eye_scenario(seed=1)
        linker = SemanticLinker(onto, corpus, top_k=10)
        propositions = linker.propose("corneal injuries")
        assert 1 <= len(propositions) <= 10
        assert [p.rank for p in propositions] == list(range(1, len(propositions) + 1))
        cosines = [p.cosine for p in propositions]
        assert cosines == sorted(cosines, reverse=True)
        assert all(0.0 <= c <= 1.0 for c in cosines)
        # the paper finds 5/10 correct: synonyms + fathers must show up
        gold = gold_positions(onto, "D065306", "corneal injuries")
        hits = [p.term for p in propositions if p.term in gold]
        assert hits, f"no gold positions among {[p.term for p in propositions]}"

    def test_synonym_ranks_above_unrelated(self):
        onto, corpus = eye_scenario(seed=2)
        propositions = SemanticLinker(onto, corpus, top_k=20).propose(
            "corneal injuries"
        )
        ranks = {p.term: p.rank for p in propositions}
        synonym_ranks = [
            ranks[t] for t in ("corneal injury", "corneal damage", "corneal trauma")
            if t in ranks
        ]
        assert synonym_ranks, "no synonym proposed at all"
        assert min(synonym_ranks) <= 5

    def test_candidate_itself_never_proposed(self):
        onto, corpus = eye_scenario(seed=3)
        propositions = SemanticLinker(onto, corpus).propose("corneal injuries")
        assert all(p.term != "corneal injuries" for p in propositions)

    def test_no_context_candidate_raises(self):
        onto, corpus = eye_scenario(seed=4)
        with pytest.raises(LinkageError):
            SemanticLinker(onto, corpus).propose("phantom term here")

    def test_bad_top_k(self):
        onto, corpus = eye_scenario(seed=5)
        with pytest.raises(LinkageError):
            SemanticLinker(onto, corpus, top_k=0)

    def test_proposition_concept_ids_resolve(self):
        onto, corpus = eye_scenario(seed=6)
        propositions = SemanticLinker(onto, corpus).propose("corneal injuries")
        for p in propositions:
            assert p.concept_ids
            for cid in p.concept_ids:
                assert cid in onto


class TestEvaluation:
    def test_gold_positions_of_corneal_injuries(self):
        onto = make_eye_fragment()
        gold = gold_positions(onto, "D065306", "corneal injuries")
        for expected in ("corneal injury", "corneal damage", "corneal trauma",
                         "corneal diseases", "eye injuries"):
            assert expected in gold
        assert "corneal injuries" not in gold

    def test_evaluate_linkage_on_generated_scenario(self):
        lexicon = BioLexicon(seed=7)
        spec = GeneratorSpec(
            n_concepts=30, n_roots=2, mean_synonyms=1.0,
            recent_fraction=0.25, year_range=(1990, 2015),
        )
        onto = OntologyGenerator(spec, lexicon=lexicon, seed=7).generate()
        sim = PubMedSimulator(
            onto, lexicon,
            spec=PubMedSpec(mention_prob=0.9, related_mention_prob=0.35),
            seed=7,
        )
        corpus = sim.generate_balanced(10)
        held = held_out_terms(onto, 2009, 2015)[:8]
        assert held, "scenario produced no held-out terms"
        linker = SemanticLinker(onto, corpus, top_k=10)
        evaluation = evaluate_linkage(linker, held)
        assert evaluation.n_terms == len(held)
        row = evaluation.as_row()
        assert set(row) == {1, 2, 5, 10}
        # precision must be monotone in k
        assert row[1] <= row[2] <= row[5] <= row[10]
        # and the pipeline must find something for most terms
        assert row[10] > 0.3

    def test_failed_linkage_counts_as_miss(self):
        onto, corpus = eye_scenario(seed=8)
        linker = SemanticLinker(onto, corpus)
        held = [HeldOutTerm(term="not in corpus at all", concept_id="D065306",
                            year_added=2014)]
        evaluation = evaluate_linkage(linker, held)
        assert evaluation.n_terms == 1
        assert evaluation.precision_at(10) == 0.0
        assert evaluation.outcomes[0].error is not None
