"""Tests for the repro.recommend subsystem (trie, annotator, engine, CLI)."""

import json

import pytest

from repro.cli import main
from repro.corpus.document import Document
from repro.corpus.index import CorpusIndex
from repro.errors import ValidationError
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.io import write_ontology_json
from repro.ontology.model import Concept, Ontology
from repro.recommend import (
    CRITERIA,
    Annotator,
    LabelTrie,
    OntologyRegistry,
    RecommendConfig,
    Recommender,
    ScoringContext,
    aggregate_score,
    default_scorers,
    naive_longest_matches,
)
from repro.recommend.scoring import (
    AcceptanceScorer,
    CoverageScorer,
    DetailScorer,
    SpecializationScorer,
)


def eye_ontology() -> Ontology:
    """A small hierarchy about eye diseases, with synonyms."""
    onto = Ontology("eye")
    onto.add_concept(Concept("E0", "disease"))
    onto.add_concept(
        Concept(
            "E1",
            "eye diseases",
            synonyms=["ocular disorders"],
            tree_numbers=["C11"],
        ),
        fathers=["E0"],
    )
    onto.add_concept(
        Concept("E2", "retinal degeneration", year_added=1999),
        fathers=["E1"],
    )
    onto.add_concept(
        Concept("E3", "macular degeneration", synonyms=["amd"]),
        fathers=["E2"],
    )
    return onto


def heart_ontology() -> Ontology:
    """A flat vocabulary about the heart — no hierarchy, no metadata."""
    onto = Ontology("heart")
    onto.add_concept(Concept("H1", "heart"))
    onto.add_concept(Concept("H2", "myocardial infarction"))
    onto.add_concept(Concept("H3", "heart attack"))
    return onto


def two_ontology_registry() -> OntologyRegistry:
    registry = OntologyRegistry()
    registry.register("eye", eye_ontology())
    registry.register("heart", heart_ontology())
    return registry


class TestLabelTrie:
    def test_longest_match_per_start(self):
        trie = LabelTrie(["heart", "heart attack", "attack rate"])
        matches = trie.longest_matches("a heart attack rate".split())
        assert matches == [(1, 2, "heart attack"), (2, 2, "attack rate")]

    def test_empty_and_missing(self):
        trie = LabelTrie(["x y"])
        assert trie.longest_matches([]) == []
        assert trie.longest_matches(["z", "z"]) == []

    def test_len_dedupes_and_max_depth(self):
        trie = LabelTrie(["a b c", "a b c", "d"])
        assert len(trie) == 2
        assert trie.max_depth == 3

    def test_parity_with_naive_on_generated_ontology(self):
        onto = OntologyGenerator(
            GeneratorSpec(n_concepts=40, polysemy_histogram={2: 3}), seed=11
        ).generate()
        labels = onto.terms()
        # A token stream that actually hits labels: label tokens + noise.
        tokens = []
        for label in labels[:20]:
            tokens.extend(label.split())
            tokens.append("noise")
        assert LabelTrie(labels).longest_matches(tokens) == (
            naive_longest_matches(labels, tokens)
        )


class TestAnnotator:
    def test_text_matches_and_coverage(self):
        registered = two_ontology_registry().get("eye")
        result = Annotator(registered).annotate_text(
            "Ocular disorders include macular degeneration."
        )
        assert result.n_tokens == 5  # tokenizer drops the punctuation
        by_label = {m.label: m for m in result.matches}
        assert by_label["ocular disorders"].preferred is False
        assert by_label["macular degeneration"].preferred is True
        assert by_label["macular degeneration"].concept_ids == ("E3",)
        assert result.covered_fraction() == pytest.approx(4 / 5)  # "include" missed
        assert result.concept_ids() == ("E1", "E3")

    def test_longest_match_shadows_inner_label(self):
        registered = two_ontology_registry().get("heart")
        result = Annotator(registered).annotate_text("heart attack")
        assert [m.label for m in result.matches] == ["heart attack"]
        assert result.n_matches == 1

    def test_index_annotation_agrees_with_text(self):
        registered = two_ontology_registry().get("eye")
        annotator = Annotator(registered)
        texts = [
            "retinal degeneration is an eye disease process",
            "amd denotes macular degeneration of the retina",
        ]
        index = CorpusIndex(
            Document.from_text(f"d{i}", text) for i, text in enumerate(texts)
        )
        from_index = annotator.annotate_index(index)
        joined = annotator.annotate_text(" ".join(texts))
        assert {m.label for m in from_index.matches} == {
            m.label for m in joined.matches
        }
        assert from_index.n_matches == joined.n_matches
        assert len(from_index.covered) == len(joined.covered)


class TestScorers:
    def _annotation(self, text="macular degeneration and amd"):
        registered = two_ontology_registry().get("eye")
        return Annotator(registered).annotate_text(text), registered

    def test_coverage_weighting(self):
        annotation, registered = self._annotation()
        config = RecommendConfig(multiword_factor=1.0, synonym_factor=1.0)
        score = CoverageScorer().score(
            annotation, registered, ScoringContext(config=config)
        )
        # 3 of 4 tokens matched, no multipliers.
        assert score == pytest.approx(3 / 4)
        boosted = CoverageScorer().score(
            annotation,
            registered,
            ScoringContext(config=RecommendConfig(multiword_factor=2.0)),
        )
        assert boosted > score

    def test_synonym_factor_downweights(self):
        annotation, registered = self._annotation(text="amd")
        config = RecommendConfig(synonym_factor=0.5, multiword_factor=1.0)
        score = CoverageScorer().score(
            annotation, registered, ScoringContext(config=config)
        )
        assert score == pytest.approx(0.5)

    def test_acceptance_needs_an_index(self):
        annotation, registered = self._annotation()
        context = ScoringContext(config=RecommendConfig())
        assert AcceptanceScorer().score(annotation, registered, context) == 0.0
        index = CorpusIndex(
            [
                Document.from_text("d0", "macular degeneration study"),
                Document.from_text("d1", "macular degeneration followup"),
                Document.from_text("d2", "unrelated text"),
            ]
        )
        with_index = ScoringContext(
            config=RecommendConfig(), acceptance_index=index
        )
        score = AcceptanceScorer().score(annotation, registered, with_index)
        # labels: "macular degeneration" (df 2) and "amd" (df 0), 3 docs.
        assert score == pytest.approx(2 / (2 * 3))

    def test_detail_and_specialization(self):
        annotation, registered = self._annotation()
        context = ScoringContext(config=RecommendConfig())
        assert 0 < DetailScorer().score(annotation, registered, context) <= 1
        # E3 sits at depth 3 of max depth 3.
        spec = SpecializationScorer().score(annotation, registered, context)
        assert spec == pytest.approx(1.0)

    def test_flat_ontology_specialization_is_zero(self):
        registered = two_ontology_registry().get("heart")
        annotation = Annotator(registered).annotate_text("heart attack")
        context = ScoringContext(config=RecommendConfig())
        score = SpecializationScorer().score(annotation, registered, context)
        assert score == 0.0

    def test_aggregate_normalises_by_weight_sum(self):
        scores = {name: 1.0 for name in CRITERIA}
        assert aggregate_score(scores, RecommendConfig()) == pytest.approx(1.0)
        assert aggregate_score(
            scores,
            RecommendConfig(
                coverage_weight=55,
                acceptance_weight=15,
                detail_weight=15,
                specialization_weight=15,
            ),
        ) == pytest.approx(1.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ValidationError):
            RecommendConfig(coverage_weight=-1)
        with pytest.raises(ValidationError):
            RecommendConfig(
                coverage_weight=0,
                acceptance_weight=0,
                detail_weight=0,
                specialization_weight=0,
            )
        with pytest.raises(ValidationError):
            RecommendConfig(max_set_size=0)


class TestRegistry:
    def test_register_precomputes(self):
        registered = OntologyRegistry()
        registered.register("eye", eye_ontology())
        info = registered.get("eye")
        assert info.n_concepts == 4
        assert info.labels["ocular disorders"].preferred is False
        assert info.labels["eye diseases"].preferred is True
        assert info.max_depth == 3
        assert info.concepts["E3"].depth == 3

    def test_duplicate_and_unknown_names(self):
        registry = OntologyRegistry()
        registry.register("eye", eye_ontology())
        with pytest.raises(ValidationError, match="already registered"):
            registry.register("eye", eye_ontology())
        with pytest.raises(ValidationError, match="unknown ontology"):
            registry.get("nope")

    def test_register_path_json(self, tmp_path):
        path = tmp_path / "eye.json"
        write_ontology_json(eye_ontology(), path)
        registry = OntologyRegistry()
        registry.register_path("eye", path)
        assert registry.names() == ["eye"]
        with pytest.raises(ValidationError, match="no ontology file"):
            registry.register_path("ghost", tmp_path / "missing.json")


class TestRecommender:
    def test_ranking_is_input_driven(self):
        recommender = Recommender(two_ontology_registry())
        eye_first = recommender.recommend_text(
            "macular degeneration and retinal degeneration"
        )
        assert [s.name for s in eye_first.ranking] == ["eye", "heart"]
        heart_first = recommender.recommend_text(
            "myocardial infarction known as heart attack"
        )
        assert [s.name for s in heart_first.ranking] == ["heart", "eye"]
        for score in eye_first.ranking:
            assert set(score.scores) == set(CRITERIA)
            assert 0.0 <= score.aggregate <= 1.0

    def test_set_recommendation_unions_coverage(self):
        recommender = Recommender(two_ontology_registry())
        report = recommender.recommend_text(
            "macular degeneration complicates myocardial infarction"
        )
        members = set(report.ontology_set.members)
        assert members == {"eye", "heart"}
        assert report.ontology_set.coverage == pytest.approx(4 / 5)
        assert report.ontology_set.coverage >= max(
            s.covered_fraction for s in report.ranking
        )

    def test_redundant_ontology_not_admitted(self):
        registry = two_ontology_registry()
        clone = eye_ontology()
        clone.name = "eye-clone"
        registry.register("eye-clone", clone)
        recommender = Recommender(registry)
        report = recommender.recommend_text("macular degeneration")
        assert list(report.ontology_set.members) == ["eye"]

    def test_corpus_input_defaults_acceptance_to_input(self):
        index = CorpusIndex(
            [Document.from_text("d0", "macular degeneration case report")]
        )
        recommender = Recommender(two_ontology_registry())
        report = recommender.recommend_index(index)
        assert report.input_kind == "corpus"
        assert report.acceptance_source == "input"
        top = report.ranking[0]
        assert top.name == "eye"
        assert top.scores["acceptance"] > 0

    def test_text_without_acceptance_index_records_none(self):
        recommender = Recommender(two_ontology_registry())
        report = recommender.recommend_text("macular degeneration")
        assert report.acceptance_source is None
        assert report.ranking[0].scores["acceptance"] == 0.0

    def test_empty_registry_rejected(self):
        with pytest.raises(ValidationError, match="no ontologies"):
            Recommender(OntologyRegistry()).recommend_text("anything")

    def test_unknown_ontology_selection_rejected(self):
        recommender = Recommender(two_ontology_registry())
        with pytest.raises(ValidationError, match="unknown ontology"):
            recommender.recommend_text("x", ontologies=["ghost"])

    def test_report_wire_shape_is_stable(self):
        recommender = Recommender(two_ontology_registry())
        report = recommender.recommend_text("macular degeneration")
        document = report.to_dict()
        assert set(document) == {"input", "config", "ranking", "set"}
        assert document["input"]["kind"] == "text"
        wire = json.dumps(document, sort_keys=True)
        assert wire == json.dumps(report.to_dict(), sort_keys=True)
        table = report.to_table()
        assert "eye" in table and "coverage" in table


class TestRecommendCli:
    @pytest.fixture()
    def ontology_files(self, tmp_path):
        eye = tmp_path / "eye.json"
        heart = tmp_path / "heart.json"
        write_ontology_json(eye_ontology(), eye)
        write_ontology_json(heart_ontology(), heart)
        return eye, heart

    def test_json_output_ranks_both(self, ontology_files, tmp_path, capsys):
        eye, heart = ontology_files
        text = tmp_path / "input.txt"
        text.write_text("macular degeneration and heart attack")
        code = main(
            [
                "recommend",
                "--ontology", f"eye={eye}",
                "--ontology", f"heart={heart}",
                "--text", str(text),
                "--format", "json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in document["ranking"]] == [
            "eye",
            "heart",
        ]
        assert set(document["set"]["members"]) == {"eye", "heart"}

    def test_table_output(self, ontology_files, tmp_path, capsys):
        eye, heart = ontology_files
        text = tmp_path / "input.txt"
        text.write_text("macular degeneration")
        code = main(
            [
                "recommend",
                "--ontology", f"eye={eye}",
                "--ontology", f"heart={heart}",
                "--text", str(text),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eye" in out and "score" in out

    def test_requires_input(self, ontology_files, capsys):
        eye, _ = ontology_files
        code = main(["recommend", "--ontology", f"eye={eye}"])
        assert code == 2
        assert "--text" in capsys.readouterr().err

    def test_bad_ontology_spec_exits(self, tmp_path, capsys):
        text = tmp_path / "input.txt"
        text.write_text("x")
        with pytest.raises(SystemExit):
            main(["recommend", "--ontology", "not-a-spec", "--text", str(text)])
