"""Tests for repro.ontology.generator, mesh, umls."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.lexicon import BioLexicon
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.mesh import (
    MeshOntologyBuilder,
    assign_tree_numbers,
    make_eye_fragment,
    make_mesh_like_ontology,
)
from repro.ontology.stats import polysemy_histogram
from repro.ontology.umls import (
    PAPER_TABLE1,
    PolysemyProfile,
    SyntheticMetathesaurus,
    paper_profiles,
)


class TestGeneratorSpec:
    def test_defaults_valid(self):
        GeneratorSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_concepts": 0},
            {"n_roots": 0},
            {"n_roots": 10, "n_concepts": 5},
            {"mean_synonyms": -1},
            {"second_father_prob": 1.5},
            {"polysemy_histogram": {1: 5}},
            {"polysemy_histogram": {2: -1}},
            {"year_range": (2020, 2010)},
            {"recent_fraction": 2.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            GeneratorSpec(**kwargs)


class TestOntologyGenerator:
    def test_generates_requested_size(self):
        onto = OntologyGenerator(GeneratorSpec(n_concepts=50), seed=0).generate()
        assert len(onto) == 50
        onto.validate()

    def test_deterministic_under_seed(self):
        a = OntologyGenerator(GeneratorSpec(n_concepts=40), seed=9).generate()
        b = OntologyGenerator(GeneratorSpec(n_concepts=40), seed=9).generate()
        assert [c.preferred_term for c in a] == [c.preferred_term for c in b]
        assert all(a.fathers(cid) == b.fathers(cid) for cid in a.concept_ids())

    def test_root_count(self):
        onto = OntologyGenerator(
            GeneratorSpec(n_concepts=30, n_roots=3), seed=1
        ).generate()
        assert len(onto.roots()) == 3

    def test_all_non_roots_have_fathers(self):
        onto = OntologyGenerator(
            GeneratorSpec(n_concepts=30, n_roots=2), seed=2
        ).generate()
        for cid in onto.concept_ids():
            if cid not in onto.roots():
                assert onto.fathers(cid)

    def test_polysemy_histogram_realised_exactly(self):
        spec = GeneratorSpec(
            n_concepts=120, polysemy_histogram={2: 8, 3: 4, 4: 2, 5: 1}
        )
        onto = OntologyGenerator(spec, seed=3).generate()
        measured = polysemy_histogram(onto)
        assert measured[2] >= 8 and measured[3] >= 4 and measured[4] >= 2
        assert measured[5] >= 1
        total_injected = 8 + 4 + 2 + 1
        assert sum(measured.values()) == total_injected

    def test_years_within_range(self):
        spec = GeneratorSpec(n_concepts=60, year_range=(2000, 2015))
        onto = OntologyGenerator(spec, seed=4).generate()
        years = [c.year_added for c in onto]
        assert all(2000 <= y <= 2015 for y in years)

    def test_recent_fraction_populates_window(self):
        spec = GeneratorSpec(
            n_concepts=100, year_range=(1990, 2015),
            recent_fraction=0.3, recent_years=6,
        )
        onto = OntologyGenerator(spec, seed=5).generate()
        recent = [c for c in onto if c.year_added >= 2010]
        assert len(recent) >= 20

    def test_shared_lexicon_is_used(self):
        lexicon = BioLexicon(seed=0)
        OntologyGenerator(
            GeneratorSpec(n_concepts=10), lexicon=lexicon, seed=0
        ).generate()
        # All preferred-term words must be in the shared POS lexicon.
        assert lexicon.pos_lexicon  # non-empty and shared

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_any_size_is_structurally_valid(self, n):
        spec = GeneratorSpec(n_concepts=n, n_roots=min(2, n))
        onto = OntologyGenerator(spec, seed=n).generate()
        onto.validate()
        assert len(onto) == n


class TestMesh:
    def test_tree_numbers_assigned_everywhere(self):
        onto = make_mesh_like_ontology(n_concepts=40, seed=0)
        for concept in onto:
            assert concept.tree_numbers

    def test_tree_numbers_extend_fathers(self):
        onto = make_mesh_like_ontology(n_concepts=40, seed=1)
        for cid in onto.concept_ids():
            for father in onto.fathers(cid):
                father_numbers = onto.concept(father).tree_numbers
                son_numbers = onto.concept(cid).tree_numbers
                assert any(
                    son.startswith(f"{fn}.")
                    for fn in father_numbers
                    for son in son_numbers
                )

    def test_builder_exposes_lexicon(self):
        builder = MeshOntologyBuilder(GeneratorSpec(n_concepts=5), seed=0)
        builder.build()
        assert builder.lexicon.pos_lexicon

    def test_reassignment_resets(self):
        onto = make_mesh_like_ontology(n_concepts=10, seed=2)
        before = {c.concept_id: list(c.tree_numbers) for c in onto}
        assign_tree_numbers(onto)
        after = {c.concept_id: list(c.tree_numbers) for c in onto}
        assert before == after


class TestEyeFragment:
    def test_corneal_injuries_present_with_paper_synonyms(self):
        onto = make_eye_fragment()
        cids = onto.concepts_for_term("corneal injuries")
        assert len(cids) == 1
        concept = onto.concept(cids[0])
        assert set(concept.synonyms) == {
            "corneal injury",
            "corneal damage",
            "corneal trauma",
        }

    def test_paper_fathers(self):
        onto = make_eye_fragment()
        cid = onto.concepts_for_term("corneal injuries")[0]
        father_terms = {onto.concept(f).preferred_term for f in onto.fathers(cid)}
        assert father_terms == {"corneal diseases", "eye injuries"}

    def test_added_in_window(self):
        onto = make_eye_fragment()
        cid = onto.concepts_for_term("corneal injuries")[0]
        assert 2009 <= onto.concept(cid).year_added <= 2015

    def test_distractors_present(self):
        onto = make_eye_fragment()
        for term in ("chemical burns", "corneal ulcer", "amniotic membrane",
                     "re-epithelialization", "wound"):
            assert onto.has_term(term), term


class TestUmlsProfiles:
    def test_paper_table1_em_dash_counts(self):
        assert PAPER_TABLE1[("umls", "en")][2] == 54_257
        assert PAPER_TABLE1[("mesh", "en")][2] == 178

    def test_profiles_scaled_preserve_shape(self):
        profiles = paper_profiles(scale=1000)
        en = profiles[("umls", "en")]
        assert en.histogram[2] == 54  # 54257/1000 rounded
        assert en.histogram[3] == 8
        # tiny but non-zero counts survive scaling
        assert profiles[("umls", "fr")].histogram[4] == 1

    def test_zero_counts_stay_zero(self):
        profiles = paper_profiles(scale=10)
        assert profiles[("mesh", "es")].histogram[2] == 0

    def test_ratio_about_one_in_200_for_umls_en(self):
        profile = paper_profiles(scale=1.0)[("umls", "en")]
        ratio = profile.polysemy_ratio()
        assert 1 / 300 < ratio < 1 / 100

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValidationError):
            PolysemyProfile("umls", "en", total_terms=2, histogram={2: 5})
        with pytest.raises(ValidationError):
            paper_profiles(scale=1.0)[("umls", "en")].scaled(0)


class TestSyntheticMetathesaurus:
    def test_generates_all_six_terminologies(self):
        meta = SyntheticMetathesaurus(scale=5000, seed=0)
        ontologies = meta.generate()
        assert set(ontologies) == set(PAPER_TABLE1)

    def test_histograms_match_profiles(self):
        meta = SyntheticMetathesaurus(scale=5000, seed=1)
        ontologies = meta.generate()
        for key, onto in ontologies.items():
            expected = meta.profiles[key].histogram
            measured = polysemy_histogram(onto)
            for k in (2, 3, 4):
                assert measured[k] == expected.get(k, 0), (key, k)
            assert measured[5] == expected.get(5, 0), key

    def test_deterministic(self):
        a = SyntheticMetathesaurus(scale=5000, seed=7).generate()
        b = SyntheticMetathesaurus(scale=5000, seed=7).generate()
        key = ("umls", "en")
        assert a[key].terms() == b[key].terms()
