"""Parity suite: monolithic vs. sharded vs. incrementally-updated indexes.

The contract of the tentpole: a :class:`ShardedCorpusIndex` (any shard
count) and a :class:`CorpusIndex` extended through ``add_documents`` are
byte-identical to a freshly built monolithic index over the same
documents — every query method AND the content fingerprint.  Randomized
corpora over a tiny vocabulary force the hard cases (repeated tokens,
overlapping occurrences, multi-token needles, shard-boundary documents).
"""

import pickle
import random

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
from repro.errors import CorpusError


def random_documents(rng, *, n_docs=9, vocab=("a", "b", "c", "d")):
    docs = []
    for i in range(n_docs):
        sentences = [
            [rng.choice(vocab) for _ in range(rng.randint(1, 12))]
            for _ in range(rng.randint(1, 4))
        ]
        docs.append(Document(f"d{i}", sentences))
    return docs


def random_terms(rng, *, vocab=("a", "b", "c", "d"), n_terms=8):
    terms = set()
    while len(terms) < n_terms:
        length = rng.randint(1, 3)
        terms.add(" ".join(rng.choice(vocab) for _ in range(length)))
    return sorted(terms)


def assert_full_parity(candidate, reference, terms):
    """Every query method of ``candidate`` matches ``reference``."""
    assert candidate.fingerprint() == reference.fingerprint()
    assert candidate.n_documents() == reference.n_documents()
    assert candidate.n_tokens() == reference.n_tokens()
    assert candidate.vocabulary_size() == reference.vocabulary_size()
    assert candidate.doc_lengths() == reference.doc_lengths()
    assert candidate.token_documents() == reference.token_documents()
    for term in terms:
        assert candidate.phrase_occurrences(term) == \
            reference.phrase_occurrences(term), term
        assert candidate.term_frequency(term) == \
            reference.term_frequency(term), term
        assert candidate.document_frequency(term) == \
            reference.document_frequency(term), term
        for window in (1, 3, 50):
            assert candidate.contexts_for_term(term, window=window) == \
                reference.contexts_for_term(term, window=window), (term, window)
        for token in term.split():
            assert candidate.token_frequency(token) == \
                reference.token_frequency(token)
    for window in (1, 20):
        assert candidate.occurrence_records(terms, window=window) == \
            reference.occurrence_records(terms, window=window)


class TestShardedParity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 16])
    def test_sharded_matches_monolithic(self, seed, n_shards):
        rng = random.Random(seed)
        docs = random_documents(rng)
        reference = CorpusIndex(docs)
        sharded = ShardedCorpusIndex(docs, n_shards=n_shards)
        assert sharded.n_shards == n_shards
        assert_full_parity(sharded, reference, random_terms(rng))

    def test_threaded_build_matches_sequential(self):
        rng = random.Random(99)
        docs = random_documents(rng, n_docs=12)
        sequential = ShardedCorpusIndex(docs, n_shards=4)
        threaded = ShardedCorpusIndex(docs, n_shards=4, n_workers=4)
        assert_full_parity(threaded, sequential, random_terms(rng))

    def test_shards_cover_contiguous_ranges(self):
        docs = [Document(f"d{i}", [["t"]]) for i in range(7)]
        sharded = ShardedCorpusIndex(docs, n_shards=3)
        assert [s.n_documents() for s in sharded.shards()] == [3, 2, 2]
        assert sharded.shard_offsets() == (0, 3, 5)

    def test_more_shards_than_documents(self):
        docs = [Document("d0", [["a"]]), Document("d1", [["b"]])]
        sharded = ShardedCorpusIndex(docs, n_shards=5)
        assert sharded.n_shards == 5
        assert sharded.n_documents() == 2
        assert_full_parity(sharded, CorpusIndex(docs), ["a", "b", "a b"])

    def test_empty_corpus(self):
        sharded = ShardedCorpusIndex([], n_shards=3)
        assert sharded.n_documents() == 0
        assert sharded.fingerprint() == CorpusIndex([]).fingerprint()
        assert sharded.term_frequency("a") == 0
        assert sharded.occurrence_records(["a"]) == {"a": []}

    def test_invalid_shard_and_worker_counts(self):
        with pytest.raises(CorpusError, match="n_shards"):
            ShardedCorpusIndex([], n_shards=0)
        with pytest.raises(CorpusError, match="n_workers"):
            ShardedCorpusIndex([], n_shards=2, n_workers=0)

    def test_map_shards_preserves_shard_order(self):
        docs = [Document(f"d{i}", [["t"] * (i + 1)]) for i in range(6)]
        sharded = ShardedCorpusIndex(docs, n_shards=3)
        expected = [s.n_tokens() for s in sharded.shards()]
        assert sharded.map_shards(lambda s: s.n_tokens()) == expected
        assert (
            sharded.map_shards(lambda s: s.n_tokens(), n_workers=3)
            == expected
        )

    def test_sharded_index_is_picklable(self):
        # The process worker backend ships the index to pool workers.
        rng = random.Random(5)
        docs = random_documents(rng, n_docs=5)
        sharded = ShardedCorpusIndex(docs, n_shards=2)
        clone = pickle.loads(pickle.dumps(sharded))
        assert_full_parity(clone, sharded, random_terms(rng))


class TestParallelQueryFanOut:
    """Every query method fans over the worker pool with identical results.

    A :class:`ShardedCorpusIndex` built with ``n_workers > 1`` answers
    queries through the same thread pool (via ``map_shards``'s default),
    and parallel answers must be byte-identical to both a sequential
    sharded index and the monolithic reference.  The default fan-out is
    size-gated (dispatch overhead dominates on tiny corpora), so these
    tests drop the gate to exercise the parallel path on small inputs.
    """

    @pytest.fixture(autouse=True)
    def _always_fan_out(self, monkeypatch):
        import repro.corpus.index as index_module

        monkeypatch.setattr(index_module, "PARALLEL_QUERY_MIN_TOKENS", 0)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    def test_parallel_queries_match_monolithic(self, seed, n_shards):
        rng = random.Random(seed)
        docs = random_documents(rng, n_docs=11)
        reference = CorpusIndex(docs)
        parallel = ShardedCorpusIndex(
            docs, n_shards=n_shards, n_workers=4
        )
        assert_full_parity(parallel, reference, random_terms(rng))

    def test_parallel_queries_match_sequential_sharded(self):
        rng = random.Random(17)
        docs = random_documents(rng, n_docs=10)
        sequential = ShardedCorpusIndex(docs, n_shards=3, n_workers=1)
        parallel = ShardedCorpusIndex(docs, n_shards=3, n_workers=4)
        assert_full_parity(parallel, sequential, random_terms(rng))

    def test_query_pool_is_reused_and_lazy(self):
        rng = random.Random(3)
        docs = random_documents(rng, n_docs=6)
        sharded = ShardedCorpusIndex(docs, n_shards=3, n_workers=3)
        assert sharded._pool is None  # nothing built until a query needs it
        sharded.term_frequency("a")
        pool = sharded._pool
        assert pool is not None
        sharded.document_frequency("a b")
        sharded.occurrence_records(["a", "b c"])
        assert sharded._pool is pool  # one pool for the index's lifetime

    def test_sequential_index_never_builds_a_pool(self):
        rng = random.Random(4)
        docs = random_documents(rng, n_docs=6)
        sharded = ShardedCorpusIndex(docs, n_shards=3)
        sharded.term_frequency("a")
        sharded.occurrence_records(["a"])
        assert sharded._pool is None

    def test_parallel_index_pickles_without_its_pool(self):
        rng = random.Random(6)
        docs = random_documents(rng, n_docs=8)
        sharded = ShardedCorpusIndex(docs, n_shards=2, n_workers=4)
        sharded.term_frequency("a")  # force the pool into existence
        assert sharded._pool is not None
        clone = pickle.loads(pickle.dumps(sharded))
        assert clone._pool is None
        assert_full_parity(clone, sharded, random_terms(rng))
        assert clone._pool is not None  # rebuilt lazily on first query

    def test_empty_needles_still_raise_under_fan_out(self):
        sharded = ShardedCorpusIndex(
            [Document("d", [["a", "b"]])], n_shards=2, n_workers=2
        )
        with pytest.raises(CorpusError, match="at least one token"):
            sharded.phrase_occurrences("")
        with pytest.raises(CorpusError, match="at least one token"):
            sharded.term_frequency([])
        with pytest.raises(CorpusError, match="at least one token"):
            sharded.contexts_for_term("  ")

    def test_small_corpora_stay_sequential_by_default(self, monkeypatch):
        """The size gate: below PARALLEL_QUERY_MIN_TOKENS, default
        queries skip the pool (dispatch would cost more than the
        traversal); explicit n_workers still forces fan-out."""
        import repro.corpus.index as index_module

        monkeypatch.setattr(
            index_module, "PARALLEL_QUERY_MIN_TOKENS", 1_000_000
        )
        rng = random.Random(8)
        docs = random_documents(rng, n_docs=6)
        sharded = ShardedCorpusIndex(docs, n_shards=3, n_workers=4)
        sharded.term_frequency("a")
        sharded.occurrence_records(["a", "b"])
        assert sharded._pool is None  # gate held: no pool, no dispatch
        sharded.map_shards(lambda s: s.n_tokens(), n_workers=4)
        assert sharded._pool is not None  # explicit override fans out


class TestIncrementalParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_add_documents_matches_fresh_build(self, seed):
        rng = random.Random(seed)
        docs = random_documents(rng)
        split = rng.randint(0, len(docs))
        incremental = CorpusIndex(docs[:split])
        incremental.add_documents(docs[split:])
        assert_full_parity(incremental, CorpusIndex(docs), random_terms(rng))

    @pytest.mark.parametrize("seed", range(4))
    def test_sharded_add_documents_matches_fresh_build(self, seed):
        rng = random.Random(seed)
        docs = random_documents(rng)
        sharded = ShardedCorpusIndex(docs[:6], n_shards=3)
        sharded.add_documents(docs[6:])
        assert_full_parity(sharded, CorpusIndex(docs), random_terms(rng))

    def test_fingerprint_extends_chain_per_document(self):
        docs = [Document(f"d{i}", [["x", "y"]]) for i in range(4)]
        grown = CorpusIndex([])
        for doc in docs:
            grown.add_documents([doc])
        assert grown.fingerprint() == CorpusIndex(docs).fingerprint()

    def test_add_documents_changes_fingerprint(self):
        index = CorpusIndex([Document("d0", [["a"]])])
        before = index.fingerprint()
        index.add_documents([Document("d1", [["a"]])])
        assert index.fingerprint() != before

    def test_duplicate_ids_rejected_before_any_mutation(self):
        index = CorpusIndex([Document("d0", [["a"]])])
        fingerprint = index.fingerprint()
        with pytest.raises(CorpusError, match="duplicate document id"):
            index.add_documents(
                [Document("d1", [["b"]]), Document("d0", [["c"]])]
            )
        # The batch was rejected atomically: d1 was never applied.
        assert index.n_documents() == 1
        assert index.fingerprint() == fingerprint
        with pytest.raises(CorpusError, match="duplicate document id"):
            index.add_documents(
                [Document("dup", [["b"]]), Document("dup", [["c"]])]
            )

    def test_sharded_duplicate_across_shards_rejected(self):
        docs = [Document(f"d{i}", [["a"]]) for i in range(4)]
        sharded = ShardedCorpusIndex(docs, n_shards=2)
        with pytest.raises(CorpusError, match="duplicate document id"):
            sharded.add_documents([Document("d0", [["b"]])])  # in shard 0
        with pytest.raises(CorpusError, match="duplicate document id"):
            sharded.add_documents([Document("d3", [["b"]])])  # in last shard

    def test_mixed_case_documents_normalised_on_add(self):
        index = CorpusIndex([Document("d0", [["corneal", "injury"]])])
        index.add_documents([Document("d1", [["Corneal", "Injury"]])])
        assert index.term_frequency("corneal injury") == 2
        assert index.document_frequency("corneal injury") == 2


class TestAllOrNothingAdds:
    """Regression: a rejected batch must leave no trace whatsoever.

    A duplicate id within the batch (or colliding with the target
    shard), or a document whose tokenisation raises mid-batch, used to
    be able to leave the last shard partially extended with the
    fingerprint chain advanced.
    """

    @staticmethod
    def snapshot(index, terms):
        return (
            index.fingerprint(),
            index.n_documents(),
            index.n_tokens(),
            index.doc_lengths(),
            {t: index.phrase_occurrences(t) for t in terms},
        )

    def test_sharded_intra_batch_duplicate_leaves_no_trace(self):
        rng = random.Random(21)
        docs = random_documents(rng)
        terms = random_terms(rng)
        sharded = ShardedCorpusIndex(docs, n_shards=3)
        before = self.snapshot(sharded, terms)
        shard_docs_before = [s.n_documents() for s in sharded.shards()]
        with pytest.raises(CorpusError, match="duplicate document id"):
            sharded.add_documents(
                [Document("n0", [["b"]]), Document("n0", [["c"]])]
            )
        assert self.snapshot(sharded, terms) == before
        assert [s.n_documents() for s in sharded.shards()] == \
            shard_docs_before

    def test_sharded_target_shard_collision_leaves_no_trace(self):
        rng = random.Random(22)
        docs = random_documents(rng)
        terms = random_terms(rng)
        sharded = ShardedCorpusIndex(docs, n_shards=3)
        before = self.snapshot(sharded, terms)
        last_shard_id = sharded.shards()[-1].doc_lengths().popitem()[0]
        # A fresh document *ahead of* the collision must not stick.
        with pytest.raises(CorpusError, match="duplicate document id"):
            sharded.add_documents(
                [Document("n0", [["b"]]), Document(last_shard_id, [["c"]])]
            )
        assert self.snapshot(sharded, terms) == before

    @pytest.mark.parametrize("n_shards", [None, 3])
    def test_failing_tokenisation_mid_batch_leaves_no_trace(self, n_shards):
        rng = random.Random(23)
        docs = random_documents(rng)
        terms = random_terms(rng)
        if n_shards is None:
            index = CorpusIndex(docs)
        else:
            index = ShardedCorpusIndex(docs, n_shards=n_shards)
        before = self.snapshot(index, terms)
        # tokens() runs caller code; a non-string "token" makes the
        # build-time lower-casing raise after a good document.
        with pytest.raises(AttributeError):
            index.add_documents(
                [Document("n0", [["fine"]]), Document("n1", [["a", 3]])]
            )
        assert self.snapshot(index, terms) == before
        # The index still works and accepts the valid part afterwards.
        index.add_documents([Document("n0", [["fine"]])])
        assert index.term_frequency("fine") == 1


class TestCorpusShardingKnob:
    def test_index_n_shards_builds_and_caches_sharded(self):
        docs = [Document(f"d{i}", [["a", "b"]]) for i in range(6)]
        corpus = Corpus(docs)
        sharded = corpus.index(n_shards=3)
        assert isinstance(sharded, ShardedCorpusIndex)
        assert corpus.index() is sharded  # None reuses the cached index
        assert corpus.index(n_shards=3) is sharded
        mono = corpus.index(n_shards=1)
        assert isinstance(mono, CorpusIndex)
        assert mono is not sharded

    def test_add_patches_cached_sharded_index(self):
        docs = [Document(f"d{i}", [["a"]]) for i in range(4)]
        corpus = Corpus(docs)
        sharded = corpus.index(n_shards=2)
        corpus.add(Document("d4", [["a"]]))
        assert corpus.index() is sharded
        assert sharded.n_documents() == 5
        assert sharded.term_frequency("a") == 5
        assert sharded.fingerprint() == CorpusIndex(corpus).fingerprint()

    def test_invalid_n_shards_rejected(self):
        corpus = Corpus([Document("d", [["a"]])])
        with pytest.raises(CorpusError, match="n_shards"):
            corpus.index(n_shards=0)


class TestParallelQueryGate:
    """The fan-out gate is overridable: kwarg > env var > module default."""

    def test_default_gate_blocks_small_corpora(self):
        docs = random_documents(random.Random(0))
        sharded = ShardedCorpusIndex(docs, n_shards=2, n_workers=4)
        # Tiny corpus: bulk queries stay sequential despite n_workers.
        assert sharded._default_query_workers() == 1

    def test_kwarg_opens_the_gate(self):
        docs = random_documents(random.Random(0))
        sharded = ShardedCorpusIndex(
            docs, n_shards=2, n_workers=4, parallel_query_min_tokens=0
        )
        assert sharded._default_query_workers() == 4
        # And the fanned-out answers are still byte-identical.
        assert_full_parity(
            sharded, CorpusIndex(docs), random_terms(random.Random(0))
        )

    def test_env_var_opens_the_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_QUERY_MIN_TOKENS", "0")
        docs = random_documents(random.Random(1))
        sharded = ShardedCorpusIndex(docs, n_shards=2, n_workers=3)
        assert sharded._default_query_workers() == 3

    def test_kwarg_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_QUERY_MIN_TOKENS", "0")
        docs = random_documents(random.Random(1))
        sharded = ShardedCorpusIndex(
            docs, n_shards=2, n_workers=3,
            parallel_query_min_tokens=10**9,
        )
        assert sharded._default_query_workers() == 1

    def test_invalid_values_rejected(self, monkeypatch):
        docs = random_documents(random.Random(2))
        with pytest.raises(CorpusError, match="parallel_query_min_tokens"):
            ShardedCorpusIndex(
                docs, n_shards=2, parallel_query_min_tokens=-1
            )
        monkeypatch.setenv("REPRO_PARALLEL_QUERY_MIN_TOKENS", "not-a-number")
        with pytest.raises(CorpusError, match="REPRO_PARALLEL_QUERY_MIN_TOKENS"):
            ShardedCorpusIndex(docs, n_shards=2)
        monkeypatch.setenv("REPRO_PARALLEL_QUERY_MIN_TOKENS", "-5")
        with pytest.raises(CorpusError, match="REPRO_PARALLEL_QUERY_MIN_TOKENS"):
            ShardedCorpusIndex(docs, n_shards=2)
