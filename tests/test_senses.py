"""Tests for repro.senses (representations, k-prediction, induction)."""

import numpy as np
import pytest

from repro.corpus.mshwsd import MshWsdSimulator
from repro.errors import ClusteringError, ValidationError
from repro.senses.induction import SenseInducer
from repro.senses.predictor import SenseCountPredictor
from repro.senses.representation import (
    bow_representation,
    graph_representation,
    represent_contexts,
)


def sense_contexts(k=2, n_per=12, seed=0):
    """Contexts from k disjoint vocabularies + true labels."""
    rng = np.random.default_rng(seed)
    contexts, labels = [], []
    for sense in range(k):
        vocab = [f"s{sense}w{i}" for i in range(12)]
        for _ in range(n_per):
            contexts.append(tuple(rng.choice(vocab, size=8)))
            labels.append(sense)
    return contexts, np.array(labels)


class TestRepresentations:
    def test_bow_shape_and_norm(self):
        contexts, __ = sense_contexts()
        matrix = bow_representation(contexts)
        assert matrix.shape[0] == len(contexts)
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_bow_empty_rejected(self):
        with pytest.raises(ValidationError):
            bow_representation([])

    def test_graph_shape_and_norm(self):
        contexts, __ = sense_contexts()
        matrix = graph_representation(contexts)
        assert matrix.shape[0] == len(contexts)
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_graph_zero_diffusion_equals_bow(self):
        contexts, __ = sense_contexts(seed=1)
        bow = bow_representation(contexts)
        graph = graph_representation(contexts, diffusion=0.0)
        np.testing.assert_allclose(bow, graph, atol=1e-12)

    def test_graph_diffusion_connects_disjoint_contexts(self):
        # Two contexts share no word, but a bridging context co-occurs
        # with both vocabularies: diffusion must create overlap.
        contexts = [("a", "b"), ("c", "d"), ("b", "c")]
        bow = bow_representation(contexts)
        graph = graph_representation(contexts, diffusion=0.8, window=2)
        assert float(bow[0] @ bow[1]) == pytest.approx(0.0)
        assert float(graph[0] @ graph[1]) > 0.0

    def test_graph_bad_diffusion(self):
        with pytest.raises(ValidationError):
            graph_representation([("a",)], diffusion=1.5)

    def test_dispatch(self):
        contexts, __ = sense_contexts()
        assert represent_contexts(contexts, "bow").shape == bow_representation(contexts).shape
        with pytest.raises(ValidationError):
            represent_contexts(contexts, "tensor")


class TestSenseCountPredictor:
    def test_fk_recovers_k_two(self):
        contexts, __ = sense_contexts(k=2, n_per=12, seed=2)
        predictor = SenseCountPredictor(algorithm="rbr", index="fk", seed=0)
        assert predictor.predict(contexts).k == 2

    def test_fk_is_conservative_about_large_k(self):
        """f_k's log10(k) denominator biases it toward k = 2.

        This is the mechanism behind the paper's 93.1 %: the MSH WSD
        distribution is overwhelmingly 2-sense, so the conservative index
        wins overall even though it under-calls 3+-sense terms.
        """
        contexts, __ = sense_contexts(k=3, n_per=12, seed=2)
        predictor = SenseCountPredictor(algorithm="rbr", index="fk", seed=0)
        prediction = predictor.predict(contexts)
        assert prediction.k == 2
        # the raw ISIM curve does rise at the true k...
        assert prediction.index_values[3] < prediction.index_values[2]

    @pytest.mark.parametrize("true_k", [2, 3])
    def test_silhouette_recovers_k(self, true_k):
        contexts, __ = sense_contexts(k=true_k, n_per=12, seed=2)
        predictor = SenseCountPredictor(
            algorithm="rbr", index="silhouette", seed=0
        )
        assert predictor.predict(contexts).k == true_k

    def test_index_values_cover_range(self):
        contexts, __ = sense_contexts(k=2, seed=3)
        prediction = SenseCountPredictor(seed=0).predict(contexts)
        assert set(prediction.index_values) == {2, 3, 4, 5}
        assert set(prediction.labels_by_k) == {2, 3, 4, 5}

    def test_bk_direction_is_min(self):
        contexts, __ = sense_contexts(k=2, seed=4)
        predictor = SenseCountPredictor(index="bk", seed=0)
        prediction = predictor.predict(contexts)
        best = min(prediction.index_values, key=prediction.index_values.get)
        assert prediction.k == best

    def test_small_context_sets_clip_range(self):
        contexts, __ = sense_contexts(k=2, n_per=2, seed=5)  # only 4 contexts
        prediction = SenseCountPredictor(seed=0).predict(contexts)
        assert set(prediction.index_values) <= {2, 3, 4}
        assert prediction.k in (2, 3, 4)

    def test_too_few_contexts_raise(self):
        predictor = SenseCountPredictor(seed=0)
        with pytest.raises(ClusteringError):
            predictor.predict([("a", "b")])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"algorithm": "kmeans"},
            {"index": "xk"},
            {"representation": "none"},
            {"k_range": (1, 2)},
            {"k_range": ()},
        ],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ValidationError):
            SenseCountPredictor(**kwargs)

    def test_deterministic(self):
        contexts, __ = sense_contexts(k=3, seed=6)
        a = SenseCountPredictor(seed=5).predict(contexts)
        b = SenseCountPredictor(seed=5).predict(contexts)
        assert a.k == b.k
        assert a.index_values == b.index_values

    def test_works_on_simulated_mshwsd_entity(self):
        entity = MshWsdSimulator(
            n_entities=1,
            sense_distribution={2: 1},
            contexts_per_sense=20,
            sense_overlap=0.0,
            background_fraction=0.3,
            seed=0,
        ).generate()[0]
        prediction = SenseCountPredictor(algorithm="rbr", seed=0).predict(
            entity.contexts
        )
        assert prediction.k == entity.true_k


class TestSenseInducer:
    def test_monosemous_single_sense(self):
        contexts, __ = sense_contexts(k=1, seed=7)
        result = SenseInducer().induce("term", contexts, polysemic=False)
        assert result.k == 1
        assert len(result.senses) == 1
        assert result.senses[0].support == len(contexts)
        assert result.prediction is None

    def test_polysemic_induces_multiple_senses(self):
        contexts, labels = sense_contexts(k=2, n_per=12, seed=8)
        result = SenseInducer(
            SenseCountPredictor(algorithm="rbr", seed=0)
        ).induce("term", contexts, polysemic=True)
        assert result.k == 2
        assert result.prediction is not None
        # induced partition should match the true senses
        assignment = np.zeros(len(contexts), dtype=int)
        for sense in result.senses:
            for idx in sense.context_indices:
                assignment[idx] = sense.sense_id
        same_true = labels[:, None] == labels[None, :]
        same_pred = assignment[:, None] == assignment[None, :]
        mask = ~np.eye(len(labels), dtype=bool)
        assert (same_true == same_pred)[mask].mean() > 0.95

    def test_top_features_come_from_the_right_vocabulary(self):
        contexts, __ = sense_contexts(k=2, n_per=10, seed=9)
        result = SenseInducer(
            SenseCountPredictor(algorithm="rbr", seed=0)
        ).induce("term", contexts, polysemic=True, k=2)
        for sense in result.senses:
            prefixes = {w[:2] for w in sense.top_features}
            assert len(prefixes) == 1  # all from one sense vocabulary

    def test_forced_k_skips_prediction(self):
        contexts, __ = sense_contexts(k=2, seed=10)
        result = SenseInducer().induce("term", contexts, k=3)
        assert result.k == 3
        assert result.prediction is None

    def test_k_clipped_to_context_count(self):
        result = SenseInducer().induce("term", [("a", "b"), ("c", "d")], k=5)
        assert result.k == 2

    def test_empty_contexts_rejected(self):
        with pytest.raises(ValidationError):
            SenseInducer().induce("term", [])

    def test_bad_top_features(self):
        with pytest.raises(ValidationError):
            SenseInducer(n_top_features=0)

    def test_every_context_assigned_exactly_once(self):
        contexts, __ = sense_contexts(k=3, seed=11)
        result = SenseInducer(
            SenseCountPredictor(algorithm="rbr", seed=0)
        ).induce("term", contexts, polysemic=True)
        assigned = sorted(
            idx for sense in result.senses for idx in sense.context_indices
        )
        assert assigned == list(range(len(contexts)))
