"""RL002 fixture: swallowed vs accounted network failures."""

import socket


class Channel:
    def __init__(self):
        self.failures = 0
        self.sock = None

    def fetch(self):
        try:
            return self._recv()
        except OSError:  # BAD: swallowed, nothing counted
            return None

    def fetch_counted(self):
        try:
            return self._recv()
        except OSError:  # fine: accounted
            self.failures += 1
            return None

    def fetch_escalated(self):
        try:
            return self._recv()
        except socket.timeout:  # fine: re-raised
            raise

    def fetch_pragma(self):
        try:
            return self._recv()
        except OSError:  # repro-lint: disable=RL002
            # Justification: fixture for the pragma path.
            return None

    def close(self):
        try:
            self.sock.close()
        except OSError:  # fine: teardown-only try body is exempt
            pass

    def _recv(self):
        return self.sock.recv(1024)
