"""RL004 fixture CLI: one stray flag, one boolean inversion."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers()
    enrich = sub.add_parser("enrich")
    enrich.add_argument("--ontology")  # exempt: I/O plumbing
    enrich.add_argument("--alpha", type=int)
    enrich.add_argument("--gamma", type=int)
    enrich.add_argument("--no-flip", action="store_true")
    enrich.add_argument("--delta", type=int)  # BAD: no such field
    other = sub.add_parser("other")
    other.add_argument("--unrelated")  # ignored: not the enrich parser
    return parser
