"""RL004 fixture: a config class with three drift seeds."""

from dataclasses import dataclass


@dataclass(frozen=True)
class EnrichmentConfig:
    alpha: int = 1  # fine: flagged and documented
    beta: int = 2  # BAD: no CLI flag
    gamma: int = 3  # BAD: flagged but not in README
    flip: bool = True  # fine: reached via --no-flip
