"""RL001 fixture: one unguarded write, several clean patterns."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._note = ""

    def bump(self):
        self._count += 1  # BAD: public write without the lock

    def bump_safely(self):
        with self._lock:
            self._count += 1  # fine: lexically inside the lock

    def annotate(self):
        with self._lock:
            self._apply_locked("x")

    def _apply_locked(self, note):
        self._note = note  # fine: _locked suffix = caller holds it

    def indirect(self):
        self._helper()

    def _helper(self):
        self._note = "y"  # BAD: reachable unlocked via indirect()


class Plain:
    """No lock attribute: RL001 never applies."""

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value
