"""RL005 fixture: unpicklable state meeting a process pool."""

import threading
from concurrent.futures import ProcessPoolExecutor

from ship import Shipped


class Holder:  # BAD: lock attribute, no pickle hook, pool module
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0


class Safe:  # fine: declares its pickle contract
    def __init__(self, path):
        self._lock = threading.Lock()
        self.path = path

    def __getstate__(self):
        return {"path": self.path}

    def __setstate__(self, state):
        self.path = state["path"]
        self._lock = threading.Lock()


class Stateless:  # fine: nothing unpicklable held
    def __init__(self):
        self.value = 0


def run(fn, batches):
    holder = Holder()
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(fn, batches, [holder] * len(batches)))


def run_with_init(fn, batches):
    pool = ProcessPoolExecutor(
        max_workers=2, initializer=fn, initargs=(Shipped(),)
    )
    try:
        return list(pool.map(fn, batches))
    finally:
        pool.shutdown()
