"""RL005 fixture: class defined pool-free but shipped via initargs."""

import threading


class Shipped:  # BAD: dispatched from work-like modules by name
    def __init__(self):
        self._guard = threading.RLock()


class Bystander:  # fine: holds a lock but is never dispatched
    def __init__(self):
        self._guard = threading.RLock()
