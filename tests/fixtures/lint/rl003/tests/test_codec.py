"""Exercises the bar pair (and mentions encode_foo for its own test)."""

from codec import decode_bar, encode_bar, encode_foo


def test_bar_roundtrip():
    assert decode_bar(encode_bar(7)) == 7


def test_foo_encodes():
    assert encode_foo(7) == "7"
