"""RL003 fixture: one orphan codec, one tested pair, one untested pair."""


def encode_foo(value):  # BAD: no decode_foo anywhere
    return str(value)


def encode_bar(value):  # fine: paired and exercised by tests/
    return str(value)


def decode_bar(raw):
    return int(raw)


def encode_baz(value):  # BAD x2: paired but never tested
    return str(value)


def decode_baz(raw):
    return int(raw)


def encode(value):  # ignored: no _suffix, not a paired codec
    return str(value)
