"""Tests for repro.linkage.relations (the paper's future-work extension)."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.errors import LinkageError
from repro.linkage.relations import (
    RELATION_TYPES,
    RelationTyper,
    TypedRelation,
    collect_pattern_votes,
)


def corpus_with(*sentences):
    docs = [
        Document(f"d{i}", [s.lower().split()]) for i, s in enumerate(sentences)
    ]
    return Corpus(docs)


class TestPatternVotes:
    def test_is_a_votes_hyperonym(self):
        corpus = corpus_with(
            "corneal abrasion is a corneal disease affecting vision",
        )
        votes = collect_pattern_votes(corpus, "corneal abrasion", "corneal disease")
        assert votes["hyperonym"] == 1

    def test_is_a_reversed_votes_hyponym(self):
        corpus = corpus_with(
            "corneal disease is broad but corneal disease such as corneal abrasion heals",
        )
        votes = collect_pattern_votes(corpus, "corneal abrasion", "corneal disease")
        # "B such as A" → A is an example of B → B hyperonym of A... the
        # pattern fires on the B-first ordering and is inverted.
        assert votes["hyperonym"] >= 1

    def test_also_called_votes_synonym(self):
        corpus = corpus_with(
            "corneal injury also called corneal trauma heals slowly",
        )
        votes = collect_pattern_votes(corpus, "corneal injury", "corneal trauma")
        assert votes["synonym"] == 1

    def test_or_votes_synonym(self):
        corpus = corpus_with("corneal injury or corneal trauma was recorded")
        votes = collect_pattern_votes(corpus, "corneal injury", "corneal trauma")
        assert votes["synonym"] == 1

    def test_distance_gap_respected(self):
        corpus = corpus_with(
            "corneal abrasion was seen and later a very different and "
            "unrelated thing is a corneal disease",
        )
        votes = collect_pattern_votes(
            corpus, "corneal abrasion", "corneal disease", max_gap=3
        )
        assert votes["hyperonym"] == 0

    def test_no_cooccurrence_no_votes(self):
        corpus = corpus_with("corneal abrasion heals", "corneal disease persists")
        votes = collect_pattern_votes(corpus, "corneal abrasion", "corneal disease")
        assert sum(votes.values()) == 0


class TestRelationTyper:
    def test_pattern_evidence_wins(self):
        corpus = corpus_with(
            "corneal abrasion is a corneal disease of the eye",
            "corneal abrasion is a corneal disease that heals",
            "corneal abrasion near cornea with wound healing",
            "corneal disease with cornea wound and healing",
        )
        typer = RelationTyper(corpus)
        relation = typer.type_relation("corneal abrasion", "corneal disease")
        assert relation.relation == "hyperonym"
        assert relation.confidence > 0.5
        assert relation.pattern_votes.get("hyperonym", 0) >= 2

    def test_high_cosine_defaults_to_synonym(self):
        # identical contexts, no pattern between the two (never co-mentioned)
        corpus = corpus_with(
            "alpha term shows wound healing response in tissue",
            "beta term shows wound healing response in tissue",
        )
        typer = RelationTyper(corpus, synonym_cosine=0.6)
        relation = typer.type_relation("alpha term", "beta term")
        assert relation.relation == "synonym"
        assert relation.cosine > 0.6

    def test_breadth_asymmetry_gives_hyperonym(self):
        # The broad term occurs in many, *diverse* contexts (as real
        # hyperonyms do); the narrow term in a single one.
        sentences = [
            "broad concept with wound healing data",
            "broad concept alongside tissue repair studies",
            "broad concept near epithelial recovery outcomes",
            "broad concept covering scar formation cases",
            "broad concept across inflammation cohorts",
            "broad concept in surgical series reports",
            "narrow concept with wound healing data",
        ]
        corpus = corpus_with(*sentences)
        typer = RelationTyper(corpus, synonym_cosine=0.95, breadth_margin=1.5)
        relation = typer.type_relation("narrow concept", "broad concept")
        assert relation.relation == "hyperonym"
        assert relation.cosine < 0.95

    def test_related_fallback(self):
        corpus = corpus_with(
            "alpha term with completely specific vocabulary one",
            "beta term with different specific vocabulary two",
        )
        typer = RelationTyper(corpus, synonym_cosine=0.95)
        relation = typer.type_relation("alpha term", "beta term")
        assert relation.relation in ("related", "synonym", "hyperonym", "hyponym")
        assert relation.relation in RELATION_TYPES

    def test_type_propositions_shared_index(self):
        corpus = corpus_with(
            "corneal injury also called corneal trauma heals",
            "corneal injury is a corneal disease of the cornea",
        )
        typer = RelationTyper(corpus)
        relations = typer.type_propositions(
            "corneal injury", ["corneal trauma", "corneal disease"]
        )
        assert len(relations) == 2
        by_position = {r.position: r.relation for r in relations}
        assert by_position["corneal trauma"] == "synonym"
        assert by_position["corneal disease"] == "hyperonym"

    def test_result_is_frozen_record(self):
        corpus = corpus_with("a b c d")
        typer = RelationTyper(corpus)
        relation = typer.type_relation("a", "c")
        assert isinstance(relation, TypedRelation)
        with pytest.raises(AttributeError):
            relation.relation = "synonym"

    def test_bad_params(self):
        corpus = corpus_with("a b")
        with pytest.raises(LinkageError):
            RelationTyper(corpus, synonym_cosine=0.0)
        with pytest.raises(LinkageError):
            RelationTyper(corpus, breadth_margin=0.5)
