"""Tests for repro.text.postag, repro.text.patterns, repro.text.ngrams."""

import pytest

from repro.text.ngrams import extract_ngrams, extract_pattern_phrases, phrase_frequencies
from repro.text.patterns import TermPattern, TermPatternMatcher, default_patterns
from repro.text.postag import COARSE_TAGS, LexiconTagger, TaggedToken


class TestLexiconTagger:
    def test_lexicon_lookup_wins(self):
        tagger = LexiconTagger({"cornea": "NOUN", "heal": "VERB"})
        assert tagger.tag_word("Cornea") == "NOUN"
        assert tagger.tag_word("heal") == "VERB"

    def test_closed_class_words(self):
        tagger = LexiconTagger()
        assert tagger.tag_word("the") == "DET"
        assert tagger.tag_word("of") == "ADP"
        assert tagger.tag_word("and") == "CONJ"

    def test_suffix_rules(self):
        tagger = LexiconTagger()
        assert tagger.tag_word("epithelialization") == "NOUN"
        assert tagger.tag_word("corneal") == "ADJ"
        assert tagger.tag_word("rapidly") == "ADV"
        assert tagger.tag_word("keratitis") == "NOUN"

    def test_digits_tagged_num(self):
        assert LexiconTagger().tag_word("2015") == "NUM"

    def test_default_tag_fallback(self):
        assert LexiconTagger().tag_word("xyzq") == "NOUN"

    def test_stopword_fallback_is_function_word(self):
        tagger = LexiconTagger()
        assert tagger.tag_word("whether") == "DET"

    def test_tag_sequence(self):
        tagger = LexiconTagger({"cornea": "NOUN"})
        tagged = tagger.tag(["the", "cornea"])
        assert tagged == [TaggedToken("the", "DET"), TaggedToken("cornea", "NOUN")]

    def test_update_lexicon(self):
        tagger = LexiconTagger()
        tagger.update_lexicon({"qqq": "ADJ"})
        assert tagger.tag_word("qqq") == "ADJ"
        assert tagger.lexicon_size == 1

    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            LexiconTagger({"w": "NOPE"})
        tagger = LexiconTagger()
        with pytest.raises(ValueError):
            tagger.update_lexicon({"w": "NOPE"})

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            LexiconTagger(default_tag="NOPE")

    def test_is_content(self):
        assert TaggedToken("cornea", "NOUN").is_content()
        assert not TaggedToken("the", "DET").is_content()


class TestPatterns:
    @pytest.mark.parametrize("language", ["en", "fr", "es"])
    def test_default_patterns_valid_tags(self, language):
        for pattern in default_patterns(language):
            assert all(tag in COARSE_TAGS for tag in pattern.tags)
            assert 0.0 < pattern.weight <= 1.0

    def test_weights_decay_with_rank(self):
        patterns = default_patterns("en")
        weights = [p.weight for p in patterns]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_matcher_exact_match(self):
        matcher = TermPatternMatcher(language="en")
        assert matcher.matches(("ADJ", "NOUN"))
        assert not matcher.matches(("DET", "NOUN"))

    def test_matcher_weight_lookup(self):
        matcher = TermPatternMatcher(language="en")
        assert matcher.weight(("NOUN",)) == 1.0
        assert matcher.weight(("VERB", "VERB")) is None

    def test_matcher_respects_length_bounds(self):
        matcher = TermPatternMatcher(language="en", min_length=2, max_length=2)
        assert matcher.matches(("ADJ", "NOUN"))
        assert not matcher.matches(("NOUN",))

    def test_matcher_bad_bounds(self):
        with pytest.raises(ValueError):
            TermPatternMatcher(min_length=0)
        with pytest.raises(ValueError):
            TermPatternMatcher(min_length=3, max_length=2)

    def test_custom_patterns_dedupe_keeps_max_weight(self):
        patterns = [
            TermPattern(("NOUN",), 0.2),
            TermPattern(("NOUN",), 0.9),
        ]
        matcher = TermPatternMatcher(patterns)
        assert matcher.weight(("NOUN",)) == 0.9


class TestNgrams:
    def test_all_ngrams_no_stop_filter(self):
        grams = extract_ngrams(["a", "b", "c"], min_n=1, max_n=2, language=None)
        assert ("a",) in grams and ("a", "b") in grams and ("b", "c") in grams

    def test_stopword_edges_dropped(self):
        grams = extract_ngrams(["the", "corneal", "injury"], min_n=2, max_n=2)
        assert ("the", "corneal") not in grams
        assert ("corneal", "injury") in grams

    def test_interior_stopword_kept(self):
        grams = extract_ngrams(
            ["degeneration", "of", "retina"], min_n=3, max_n=3
        )
        assert ("degeneration", "of", "retina") in grams

    def test_lowercasing(self):
        grams = extract_ngrams(["Corneal", "Injury"], min_n=2, max_n=2)
        assert ("corneal", "injury") in grams

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            extract_ngrams(["a"], min_n=0)
        with pytest.raises(ValueError):
            extract_ngrams(["a"], min_n=2, max_n=1)

    def test_pattern_phrases(self):
        tagger = LexiconTagger({"corneal": "ADJ", "injury": "NOUN", "heals": "VERB"})
        tagged = tagger.tag(["corneal", "injury", "heals"])
        matcher = TermPatternMatcher(language="en")
        phrases = extract_pattern_phrases(tagged, matcher)
        texts = [p for p, _w in phrases]
        assert ("corneal", "injury") in texts
        assert ("injury",) in texts
        assert ("corneal", "injury", "heals") not in texts

    def test_phrase_frequencies(self):
        counts = phrase_frequencies([("a",), ("a",), ("b",)])
        assert counts == {("a",): 2, ("b",): 1}
