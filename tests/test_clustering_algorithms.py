"""Tests for the five clustering algorithms (rb, rbr, direct, agglo, graph)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.clustering.algorithms import ALGORITHM_NAMES, cluster
from repro.clustering.bisecting import repeated_bisection
from repro.clustering.kmeans import spherical_kmeans
from repro.clustering.model import ClusterSolution
from repro.errors import ClusteringError


def blobs(k=3, n_per=12, d=16, noise=0.05, seed=0):
    """k well-separated groups of noisy unit vectors + true labels."""
    rng = np.random.default_rng(seed)
    centers = np.zeros((k, d))
    for i in range(k):
        centers[i, i * (d // k) : (i + 1) * (d // k)] = 1.0
    rows, labels = [], []
    for i in range(k):
        for _ in range(n_per):
            row = centers[i] + noise * np.abs(rng.normal(size=d))
            rows.append(row)
            labels.append(i)
    return np.array(rows), np.array(labels)


def agreement(pred, true) -> float:
    """Fraction of object pairs on which two labelings agree (Rand index)."""
    n = len(pred)
    same_pred = pred[:, None] == pred[None, :]
    same_true = true[:, None] == true[None, :]
    mask = ~np.eye(n, dtype=bool)
    return float((same_pred == same_true)[mask].mean())


class TestAlgorithmsRecoverBlobs:
    @pytest.mark.parametrize("method", ALGORITHM_NAMES)
    def test_recovers_three_blobs(self, method):
        matrix, true = blobs(k=3, seed=1)
        solution = cluster(matrix, 3, method=method, seed=0)
        assert solution.k == 3
        assert agreement(solution.labels, true) > 0.95

    @pytest.mark.parametrize("method", ALGORITHM_NAMES)
    def test_sparse_input_supported(self, method):
        matrix, true = blobs(k=2, n_per=8, seed=2)
        solution = cluster(sp.csr_matrix(matrix), 2, method=method, seed=0)
        assert agreement(solution.labels, true) > 0.95

    @pytest.mark.parametrize("method", ALGORITHM_NAMES)
    def test_labels_contiguous_and_complete(self, method):
        matrix, __ = blobs(k=4, n_per=6, seed=3)
        solution = cluster(matrix, 4, method=method, seed=1)
        assert set(solution.labels.tolist()) == {0, 1, 2, 3}

    @pytest.mark.parametrize("method", ALGORITHM_NAMES)
    def test_stats_attached(self, method):
        matrix, __ = blobs(k=2, n_per=5, seed=4)
        solution = cluster(matrix, 2, method=method, seed=0)
        assert solution.stats is not None
        assert solution.stats.k == 2
        assert solution.stats.mean_isim() > solution.stats.mean_esim()

    def test_unknown_method(self):
        matrix, __ = blobs()
        with pytest.raises(ClusteringError, match="unknown method"):
            cluster(matrix, 2, method="magic")


class TestSphericalKmeans:
    def test_k_equals_one(self):
        matrix, __ = blobs(k=2, n_per=4)
        solution = spherical_kmeans(matrix, 1, seed=0)
        assert solution.k == 1
        assert np.all(solution.labels == 0)

    def test_k_equals_n_all_singletons(self):
        matrix, __ = blobs(k=2, n_per=2, noise=0.2)
        solution = spherical_kmeans(matrix, matrix.shape[0], seed=0)
        assert len(set(solution.labels.tolist())) == matrix.shape[0]

    def test_bad_k_raises(self):
        matrix, __ = blobs(k=2, n_per=2)
        with pytest.raises(ClusteringError):
            spherical_kmeans(matrix, 0)
        with pytest.raises(ClusteringError):
            spherical_kmeans(matrix, 100)

    def test_deterministic_with_seed(self):
        matrix, __ = blobs(k=3, seed=5)
        a = spherical_kmeans(matrix, 3, seed=42)
        b = spherical_kmeans(matrix, 3, seed=42)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_warm_start_respected(self):
        matrix, true = blobs(k=2, n_per=6, seed=6)
        warm = spherical_kmeans(matrix, 2, init_labels=true)
        assert agreement(warm.labels, true) == 1.0

    def test_warm_start_length_checked(self):
        matrix, __ = blobs(k=2, n_per=3)
        with pytest.raises(ClusteringError):
            spherical_kmeans(matrix, 2, init_labels=np.zeros(3, dtype=int))

    def test_identical_points_still_k_clusters(self):
        matrix = np.tile([1.0, 0.0], (6, 1))
        solution = spherical_kmeans(matrix, 2, seed=0)
        assert solution.k == 2
        assert len(set(solution.labels.tolist())) == 2


class TestRepeatedBisection:
    def test_k_one_trivial(self):
        matrix, __ = blobs(k=2, n_per=3)
        solution = repeated_bisection(matrix, 1, seed=0)
        assert solution.k == 1

    def test_refine_flag_sets_algorithm_name(self):
        matrix, __ = blobs(k=2, n_per=5, seed=7)
        assert repeated_bisection(matrix, 2, refine=False, seed=0).algorithm == "rb"
        assert repeated_bisection(matrix, 2, refine=True, seed=0).algorithm == "rbr"

    def test_rbr_criterion_at_least_rb(self):
        from repro.clustering.criterion import criterion_value

        matrix, __ = blobs(k=4, n_per=8, noise=0.3, seed=8)
        rb = repeated_bisection(matrix, 4, refine=False, seed=3)
        rbr = repeated_bisection(matrix, 4, refine=True, seed=3)
        i2_rb = criterion_value(matrix, rb.labels, "i2")
        i2_rbr = criterion_value(matrix, rbr.labels, "i2")
        assert i2_rbr >= i2_rb - 1e-9

    def test_impossible_k(self):
        matrix = np.tile([1.0, 0.0], (3, 1))
        # identical points: splits still possible down to n clusters
        solution = repeated_bisection(matrix, 3, seed=0)
        assert solution.k == 3
        with pytest.raises(ClusteringError):
            repeated_bisection(matrix, 4, seed=0)


class TestGraphAndAgglo:
    def test_agglo_deterministic(self):
        from repro.clustering.agglomerative import agglomerative_cluster

        matrix, __ = blobs(k=3, n_per=5, seed=9)
        a = agglomerative_cluster(matrix, 3)
        b = agglomerative_cluster(matrix, 3)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_graph_handles_exact_k_adjustment(self):
        from repro.clustering.graphclust import graph_cluster

        # Force k larger than natural community count.
        matrix, __ = blobs(k=2, n_per=10, seed=10)
        solution = graph_cluster(matrix, 5, seed=0)
        assert solution.k == 5
        assert len(set(solution.labels.tolist())) == 5

    def test_graph_merges_down_to_k(self):
        from repro.clustering.graphclust import graph_cluster

        matrix, __ = blobs(k=4, n_per=8, seed=11)
        solution = graph_cluster(matrix, 2, seed=0)
        assert solution.k == 2

    def test_agglo_bad_k(self):
        from repro.clustering.agglomerative import agglomerative_cluster

        matrix, __ = blobs(k=2, n_per=2)
        with pytest.raises(ClusteringError):
            agglomerative_cluster(matrix, 0)
