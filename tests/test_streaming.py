"""Streaming delta enrichment (`repro.workflow.streaming`).

The acceptance shape of the continuous-enrichment path: a document
delta recomputes only terms whose postings changed (everything else is
served warm from the feature cache, proven by the report's own cache
counters), and the emitted diff composes with the prior report to equal
a from-scratch run over the grown corpus.
"""

import json

import pytest

from repro.corpus.document import Document
from repro.errors import CorpusError, ValidationError
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher
from repro.workflow.report import EnrichmentReport, TermReport
from repro.workflow.streaming import ReportDiff, StreamingEnricher

SCENARIO = dict(seed=0, n_concepts=20, docs_per_concept=4)


def fresh_scenario():
    return make_enrichment_scenario(**SCENARIO)


def structural(report) -> str:
    """A report's diffable shape: drop the runtime measurements."""
    document = report.to_dict()
    document.pop("timings")
    document.pop("cache")
    return json.dumps(document, sort_keys=True)


def unrelated_document(doc_id="stream-quiet"):
    """A document whose tokens match no known term (pure padding)."""
    return Document(
        doc_id, [["zzqx", "wwvk", "ggph", "zzqx"], ["wwvk", "ggph"]]
    )


def mentioning_document(term, doc_id="stream-loud"):
    """A document that perturbs ``term``'s postings several times."""
    words = term.split()
    return Document(
        doc_id,
        [words + ["zzqx"] + words, ["wwvk"] + words + ["ggph"]],
    )


@pytest.fixture(scope="module")
def story():
    """One full streaming run: baseline, a quiet delta, a loud delta.

    Module-scoped because every step re-runs the pipeline; the tests
    below each assert one property of the shared run.
    """
    scenario = fresh_scenario()
    streamer = StreamingEnricher(
        scenario.ontology, scenario.corpus, pos_lexicon=scenario.pos_lexicon
    )
    baseline = streamer.baseline()
    target_term = sorted(scenario.ontology.terms())[0]
    quiet = streamer.add_documents([unrelated_document()])
    loud = streamer.add_documents([mentioning_document(target_term)])
    return {
        "streamer": streamer,
        "baseline": baseline,
        "quiet": quiet,
        "loud": loud,
        "target_term": target_term,
    }


class TestDeltaRecomputation:
    def test_quiet_delta_recomputes_nothing(self, story):
        """No known term's postings changed ⇒ every vector comes warm."""
        quiet = story["quiet"]
        assert quiet.changed_terms == []
        assert quiet.n_recomputed == 0
        assert quiet.cache["misses"] == 0
        assert quiet.cache["hits"] > 0

    def test_loud_delta_recomputes_only_the_mentioned_term(self, story):
        """Exactly the perturbed term misses; the rest stay warm."""
        loud = story["loud"]
        assert story["target_term"] in loud.changed_terms
        assert loud.cache["misses"] > 0
        # At most two key families (detection + training) per changed
        # term can miss; everything untouched must hit.
        assert loud.cache["misses"] <= 2 * len(loud.changed_terms)
        assert loud.cache["hits"] > 0

    def test_fingerprint_provenance_chains(self, story):
        streamer, quiet, loud = (
            story["streamer"], story["quiet"], story["loud"],
        )
        assert quiet.fingerprint == loud.base_fingerprint
        assert loud.fingerprint == streamer.fingerprint
        assert quiet.base_fingerprint != quiet.fingerprint
        assert streamer.deltas == [quiet, loud]

    def test_delta_documents_are_recorded(self, story):
        assert story["quiet"].documents == ["stream-quiet"]
        assert story["loud"].documents == ["stream-loud"]


class TestDiffComposition:
    def test_diffs_compose_to_the_from_scratch_report(self, story):
        """diff2.apply(diff1.apply(base)) == a cold run over everything."""
        composed = story["loud"].apply(
            story["quiet"].apply(story["baseline"])
        )
        scenario = fresh_scenario()
        corpus = scenario.corpus
        corpus.add(unrelated_document())
        corpus.add(mentioning_document(story["target_term"]))
        scratch = OntologyEnricher(
            scenario.ontology, pos_lexicon=scenario.pos_lexicon
        ).enrich(corpus)
        assert structural(composed) == structural(scratch)
        assert structural(story["streamer"].report) == structural(scratch)

    def test_diff_partitions_the_new_report(self, story):
        loud = story["loud"]
        accounted = (
            {report.term for report in loud.added}
            | {report.term for report in loud.rescored}
            | set(loud.unchanged)
        )
        assert accounted == set(loud.term_order)
        for term in loud.dropped:
            assert term not in loud.term_order

    def test_diff_document_is_json_safe(self, story):
        document = story["loud"].to_dict()
        assert json.loads(json.dumps(document)) == document
        assert document["n_recomputed"] == story["loud"].n_recomputed


class TestDeltaValidation:
    def test_empty_batch_is_rejected(self, story):
        with pytest.raises(ValidationError, match="at least one"):
            story["streamer"].add_documents([])

    def test_duplicate_ids_leave_no_trace(self, story):
        streamer = story["streamer"]
        before_docs = streamer.corpus.n_documents()
        before_fp = streamer.fingerprint
        before_deltas = len(streamer.deltas)
        with pytest.raises(CorpusError, match="in batch"):
            streamer.add_documents(
                [unrelated_document("twin"), unrelated_document("twin")]
            )
        with pytest.raises(CorpusError, match="already in corpus"):
            streamer.add_documents([unrelated_document("stream-quiet")])
        assert streamer.corpus.n_documents() == before_docs
        assert streamer.fingerprint == before_fp
        assert len(streamer.deltas) == before_deltas


class TestDiskBackedCarryForward:
    def test_disk_cache_stays_warm_across_a_delta(self, tmp_path):
        """Both key families migrate on a DiskCacheStore-backed run."""
        scenario = fresh_scenario()
        enricher = OntologyEnricher(
            scenario.ontology,
            config=EnrichmentConfig(cache_dir=str(tmp_path / "cache")),
            pos_lexicon=scenario.pos_lexicon,
        )
        streamer = StreamingEnricher(
            scenario.ontology, scenario.corpus, enricher=enricher
        )
        streamer.baseline()
        diff = streamer.add_documents([unrelated_document()])
        assert diff.cache["misses"] == 0
        assert diff.cache["hits"] > 0


class TestReportDiffUnit:
    def make_row(self, term, score=1.0, rank=1):
        return TermReport(term=term, extraction_score=score, extraction_rank=rank)

    def test_apply_reorders_and_patches(self):
        base = EnrichmentReport(
            terms=[self.make_row("alpha"), self.make_row("beta")]
        )
        diff = ReportDiff(
            base_fingerprint="fp0",
            fingerprint="fp1",
            added=[self.make_row("gamma")],
            rescored=[self.make_row("alpha", score=2.0)],
            dropped=["beta"],
            unchanged=[],
            term_order=["gamma", "alpha"],
        )
        composed = diff.apply(base)
        assert [row.term for row in composed.terms] == ["gamma", "alpha"]
        assert composed.terms[1].extraction_score == 2.0

    def test_apply_rejects_a_drop_the_base_never_had(self):
        diff = ReportDiff(
            base_fingerprint="fp0", fingerprint="fp1", dropped=["ghost"]
        )
        with pytest.raises(ValidationError, match="never had"):
            diff.apply(EnrichmentReport())

    def test_apply_rejects_the_wrong_base(self):
        diff = ReportDiff(
            base_fingerprint="fp0",
            fingerprint="fp1",
            unchanged=["alpha"],
            term_order=["alpha"],
        )
        with pytest.raises(ValidationError, match="wrong base"):
            diff.apply(EnrichmentReport())


def test_streamer_rejects_duplicate_against_empty_corpus_index():
    """The duplicate check must not require a prior baseline run."""
    scenario = fresh_scenario()
    streamer = StreamingEnricher(
        scenario.ontology, scenario.corpus, pos_lexicon=scenario.pos_lexicon
    )
    existing = scenario.corpus[0].doc_id
    with pytest.raises(CorpusError, match="already in corpus"):
        streamer.add_documents([Document(existing, [["x"]])])
