"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_reproducible(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9, size=8)
        b = ensure_rng(2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_numpy_integer_accepted(self):
        rng = ensure_rng(np.int64(5))
        assert isinstance(rng, np.random.Generator)

    def test_bad_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not a seed")


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(ensure_rng(0), n=4)
        assert len(children) == 4

    def test_children_independent_of_later_parent_use(self):
        parent_a = ensure_rng(7)
        child_a = spawn_rng(parent_a, n=1)[0]
        parent_b = ensure_rng(7)
        child_b = spawn_rng(parent_b, n=1)[0]
        parent_b.integers(0, 10, size=100)  # extra parent use after spawning
        np.testing.assert_array_equal(
            child_a.integers(0, 1000, size=5), child_b.integers(0, 1000, size=5)
        )

    def test_children_are_distinct_streams(self):
        a, b = spawn_rng(ensure_rng(3), n=2)
        assert not np.array_equal(
            a.integers(0, 10**9, size=8), b.integers(0, 10**9, size=8)
        )

    def test_zero_n_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), n=0)
