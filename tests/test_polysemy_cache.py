"""Feature-cache behaviour: keys, counters, and dataset-build reuse."""

import numpy as np
import pytest

from repro.corpus.corpus import Corpus, Document
from repro.polysemy.cache import FeatureCache
from repro.polysemy.dataset import build_polysemy_dataset
from repro.polysemy.features import PolysemyFeatureExtractor
from repro.scenarios import make_enrichment_scenario


class TestFeatureCache:
    def test_miss_then_hit(self):
        cache = FeatureCache()
        key = FeatureCache.key("corpus", "term", "config")
        assert cache.lookup(key) is None
        cache.store(key, np.arange(3.0))
        np.testing.assert_array_equal(cache.lookup(key), np.arange(3.0))
        stats = cache.stats
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)
        assert stats["disk_hits"] == 0 and stats["evictions"] == 0
        assert stats["store_bytes"] == np.arange(3.0).nbytes
        assert len(cache) == 1

    def test_distinct_key_components_do_not_collide(self):
        cache = FeatureCache()
        cache.store(FeatureCache.key("c1", "t", "f"), np.zeros(1))
        assert cache.lookup(FeatureCache.key("c2", "t", "f")) is None
        assert cache.lookup(FeatureCache.key("c1", "t2", "f")) is None
        assert cache.lookup(FeatureCache.key("c1", "t", "f2")) is None
        assert cache.lookup(FeatureCache.key("c1", "t", "f")) is not None

    def test_clear_resets_everything(self):
        cache = FeatureCache()
        cache.store(FeatureCache.key("c", "t", "f"), np.zeros(2))
        cache.lookup(FeatureCache.key("c", "t", "f"))
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats
        assert (stats["hits"], stats["misses"], stats["entries"]) == (0, 0, 0)
        assert stats["store_bytes"] == 0


class TestFingerprints:
    def test_corpus_fingerprint_is_stable(self):
        scenario = make_enrichment_scenario(
            seed=3, n_concepts=10, docs_per_concept=3
        )
        first = scenario.corpus.index().fingerprint()
        second = scenario.corpus.index().fingerprint()
        assert first == second

    def test_corpus_fingerprint_tracks_content(self):
        docs = [Document.from_text("a", "heart attack risk factors")]
        corpus_a = Corpus(documents=docs)
        corpus_b = Corpus(
            documents=docs
            + [Document.from_text("b", "cornea injury healing")]
        )
        assert (
            corpus_a.index().fingerprint() != corpus_b.index().fingerprint()
        )

    def test_extractor_fingerprint_pins_every_setting(self):
        base = PolysemyFeatureExtractor()
        assert base.fingerprint() == PolysemyFeatureExtractor().fingerprint()
        variants = [
            PolysemyFeatureExtractor(window=5),
            PolysemyFeatureExtractor(graph_window=2),
            PolysemyFeatureExtractor(feature_set="direct"),
            PolysemyFeatureExtractor(community_backend="greedy"),
            PolysemyFeatureExtractor(community_seed=9),
        ]
        fingerprints = {v.fingerprint() for v in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)


class TestDatasetBuildReuse:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_enrichment_scenario(
            seed=11, n_concepts=15, docs_per_concept=4,
            polysemy_histogram={2: 3},
        )

    def test_second_build_hits_and_matches(self, scenario):
        cache = FeatureCache()
        kwargs = dict(min_contexts=2, seed=0, cache=cache)
        first = build_polysemy_dataset(
            scenario.ontology, scenario.corpus, **kwargs
        )
        assert cache.stats["hits"] == 0
        assert cache.stats["misses"] == first.n_samples
        second = build_polysemy_dataset(
            scenario.ontology, scenario.corpus, **kwargs
        )
        assert cache.stats["hits"] == first.n_samples
        np.testing.assert_array_equal(first.X, second.X)
        np.testing.assert_array_equal(first.y, second.y)
        assert first.terms == second.terms

    def test_cached_build_matches_uncached(self, scenario):
        cached = build_polysemy_dataset(
            scenario.ontology, scenario.corpus,
            min_contexts=2, seed=0, cache=FeatureCache(),
        )
        plain = build_polysemy_dataset(
            scenario.ontology, scenario.corpus, min_contexts=2, seed=0,
        )
        np.testing.assert_array_equal(cached.X, plain.X)
        np.testing.assert_array_equal(cached.y, plain.y)

    def test_retrieval_cap_isolates_entries(self, scenario):
        # Different max_contexts shape different vectors, so the second
        # build must not reuse the first build's entries.
        cache = FeatureCache()
        build_polysemy_dataset(
            scenario.ontology, scenario.corpus,
            min_contexts=2, max_contexts=60, seed=0, cache=cache,
        )
        before = cache.stats["hits"]
        build_polysemy_dataset(
            scenario.ontology, scenario.corpus,
            min_contexts=2, max_contexts=3, seed=0, cache=cache,
        )
        assert cache.stats["hits"] == before
