"""Tests for repro.ontology.snapshot, stats, io."""

import warnings

import pytest

from repro.errors import LabelCollisionWarning, OntologyError
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.io import (
    ontology_from_json,
    ontology_from_obo,
    ontology_to_json,
    ontology_to_obo,
    read_ontology_json,
    write_ontology_json,
)
from repro.ontology.model import Concept, Ontology
from repro.ontology.snapshot import held_out_terms, snapshot_before
from repro.ontology.stats import PolysemyStatistics, polysemy_histogram


def dated_ontology() -> Ontology:
    onto = Ontology("dated")
    onto.add_concept(Concept("R", "root term", year_added=1990))
    onto.add_concept(Concept("A", "old branch", year_added=1995), fathers=["R"])
    onto.add_concept(Concept("M", "middle node", year_added=2011), fathers=["A"])
    onto.add_concept(Concept("N", "new leaf", year_added=2013), fathers=["M"])
    onto.add_concept(Concept("L", "lonely new", year_added=2012))
    return onto


class TestHeldOutTerms:
    def test_selects_window(self):
        held = held_out_terms(dated_ontology(), 2009, 2015)
        terms = [h.term for h in held]
        assert "middle node" in terms and "new leaf" in terms

    def test_excludes_structurally_isolated(self):
        held = held_out_terms(dated_ontology(), 2009, 2015)
        assert all(h.term != "lonely new" for h in held)

    def test_excludes_out_of_window(self):
        held = held_out_terms(dated_ontology(), 2009, 2015)
        assert all(h.term != "old branch" for h in held)

    def test_sorted_by_year_then_term(self):
        held = held_out_terms(dated_ontology(), 2009, 2015)
        keys = [(h.year_added, h.term) for h in held]
        assert keys == sorted(keys)

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            held_out_terms(dated_ontology(), 2015, 2009)


class TestSnapshotBefore:
    def test_drops_recent_concepts(self):
        snap = snapshot_before(dated_ontology(), 2009)
        assert "N" not in snap and "M" not in snap and "L" not in snap
        assert "R" in snap and "A" in snap

    def test_reattaches_orphans_to_surviving_ancestor(self):
        onto = dated_ontology()
        onto.add_concept(
            Concept("D", "deep old leaf", year_added=2000), fathers=["M"]
        )
        snap = snapshot_before(onto, 2009)
        # M (2011) is dropped; D must re-attach to A, M's surviving father.
        assert snap.fathers("D") == ["A"]

    def test_none_year_survives(self):
        onto = Ontology("x")
        onto.add_concept(Concept("U", "undated term"))
        snap = snapshot_before(onto, 2000)
        assert "U" in snap

    def test_snapshot_is_independent_copy(self):
        onto = dated_ontology()
        snap = snapshot_before(onto, 2009)
        snap.add_synonym("R", "alias added later")
        assert "alias added later" not in onto.concept("R").synonyms

    def test_generated_ontology_snapshot_valid(self):
        onto = OntologyGenerator(
            GeneratorSpec(n_concepts=80, recent_fraction=0.3), seed=11
        ).generate()
        snap = snapshot_before(onto, 2010)
        snap.validate()
        assert len(snap) < len(onto)


class TestStats:
    def test_histogram_bins(self):
        onto = Ontology("h")
        for i in range(6):
            onto.add_concept(Concept(f"C{i}", f"term {i}"))
        onto.add_synonym("C0", "two senses")
        onto.add_synonym("C1", "two senses")
        for cid in ("C0", "C1", "C2", "C3", "C4", "C5"):
            onto.add_synonym(cid, "six senses")
        hist = polysemy_histogram(onto)
        assert hist[2] == 1
        assert hist[5] == 1  # 6 senses lands in the 5+ bin
        assert hist[3] == 0 and hist[4] == 0

    def test_statistics_measure_and_ratios(self):
        onto = Ontology("m")
        onto.add_concept(Concept("A", "alpha term"))
        onto.add_concept(Concept("B", "beta term"))
        onto.add_synonym("A", "shared")
        onto.add_synonym("B", "shared")
        stats = PolysemyStatistics.measure({("mesh", "en"): onto})
        key = ("mesh", "en")
        assert stats.n_polysemic(key) == 1
        assert stats.polysemy_ratio(key) == pytest.approx(1 / 3)
        assert stats.dominant_bin_share(key) == 1.0

    def test_table_rendering(self):
        onto = Ontology("t")
        onto.add_concept(Concept("A", "one term"))
        stats = PolysemyStatistics.measure({("umls", "en"): onto})
        table = stats.to_table(title="Table 1")
        assert "Table 1" in table
        assert "UMLS EN" in table
        assert "5+" in table


class TestIo:
    def test_json_roundtrip(self, tmp_path):
        onto = OntologyGenerator(
            GeneratorSpec(n_concepts=25, polysemy_histogram={2: 2}), seed=5
        ).generate()
        path = tmp_path / "onto.json"
        write_ontology_json(onto, path)
        back = read_ontology_json(path)
        assert back.terms() == onto.terms()
        assert all(
            back.fathers(cid) == onto.fathers(cid) for cid in onto.concept_ids()
        )
        assert back.concept("C000003").year_added == onto.concept("C000003").year_added

    def test_json_version_check(self):
        payload = ontology_to_json(dated_ontology())
        payload["format_version"] = 99
        with pytest.raises(OntologyError, match="format version"):
            ontology_from_json(payload)

    def test_obo_roundtrip(self):
        onto = dated_ontology()
        onto.add_synonym("A", "old alias")
        text = ontology_to_obo(onto)
        back = ontology_from_obo(text)
        assert back.terms() == onto.terms()
        assert back.fathers("N") == ["M"]
        assert back.concept("A").year_added == 1995

    def test_obo_contains_synonym_lines(self):
        onto = dated_ontology()
        onto.add_synonym("A", "old alias")
        assert 'synonym: "old alias" EXACT []' in ontology_to_obo(onto)


class TestLabelCollisions:
    """Loaders warn on case/space-colliding labels; first spelling wins."""

    def _payload(self, synonyms):
        return {
            "format_version": 1,
            "name": "colliding",
            "concepts": [
                {
                    "id": "C1",
                    "preferred_term": "Eye Diseases",
                    "synonyms": synonyms,
                    "year_added": None,
                    "tree_numbers": [],
                    "fathers": [],
                }
            ],
        }

    def test_json_synonym_colliding_with_preferred_is_dropped(self):
        payload = self._payload(["eye  diseases", "ocular disorders"])
        with pytest.warns(LabelCollisionWarning, match="'Eye Diseases'"):
            onto = ontology_from_json(payload)
        assert onto.concept("C1").synonyms == ["ocular disorders"]

    def test_json_duplicate_synonyms_keep_first_spelling(self):
        payload = self._payload(["Ocular Disorders", "ocular disorders"])
        with pytest.warns(LabelCollisionWarning, match="'Ocular Disorders'"):
            onto = ontology_from_json(payload)
        assert onto.concept("C1").synonyms == ["Ocular Disorders"]

    def test_json_clean_input_does_not_warn(self):
        payload = self._payload(["ocular disorders"])
        with warnings.catch_warnings():
            warnings.simplefilter("error", LabelCollisionWarning)
            onto = ontology_from_json(payload)
        assert onto.concept("C1").synonyms == ["ocular disorders"]

    def test_obo_collision_warns_and_dedupes(self):
        text = "\n".join(
            [
                "format-version: 1.2",
                "ontology: colliding",
                "",
                "[Term]",
                "id: C1",
                "name: Eye Diseases",
                'synonym: "EYE DISEASES" EXACT []',
                'synonym: "ocular disorders" EXACT []',
                "",
            ]
        )
        with pytest.warns(LabelCollisionWarning, match="C1"):
            onto = ontology_from_obo(text)
        assert onto.concept("C1").synonyms == ["ocular disorders"]
