"""Integration tests: the assembled four-step workflow and scenarios."""

import pytest

from repro.errors import ValidationError
from repro.scenarios import make_corneal_scenario, make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher
from repro.workflow.report import EnrichmentReport, TermReport


class TestScenarios:
    def test_enrichment_scenario_wiring(self):
        scenario = make_enrichment_scenario(seed=0, n_concepts=20,
                                            docs_per_concept=3)
        assert len(scenario.ontology) == 20
        assert scenario.corpus.n_documents() == 60
        # every corpus word has a gold POS tag
        for doc in list(scenario.corpus)[:5]:
            for token in doc.tokens():
                assert token in scenario.pos_lexicon

    def test_corneal_scenario_has_paper_terms(self):
        scenario = make_corneal_scenario(seed=0, docs_per_concept=3)
        assert scenario.ontology.has_term("corneal injuries")
        assert scenario.ontology.has_term("corneal trauma")

    def test_scenarios_deterministic(self):
        a = make_enrichment_scenario(seed=5, n_concepts=15, docs_per_concept=2)
        b = make_enrichment_scenario(seed=5, n_concepts=15, docs_per_concept=2)
        assert a.ontology.terms() == b.ontology.terms()
        assert [d.tokens() for d in a.corpus] == [d.tokens() for d in b.corpus]


class TestEnrichmentConfig:
    def test_defaults_valid(self):
        config = EnrichmentConfig()
        assert config.sense_index == "fk"
        assert config.top_k_positions == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_candidates": 0},
            {"min_contexts": 0},
            {"top_k_positions": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            EnrichmentConfig(**kwargs)


class TestOntologyEnricher:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_enrichment_scenario(
            seed=3, n_concepts=40, docs_per_concept=8,
            polysemy_histogram={2: 5, 3: 2},
        )

    @pytest.fixture(scope="class")
    def report(self, scenario):
        enricher = OntologyEnricher(
            scenario.ontology,
            config=EnrichmentConfig(n_candidates=8, min_contexts=3),
            pos_lexicon=scenario.pos_lexicon,
        )
        return enricher.enrich(scenario.corpus)

    def test_report_has_candidates(self, report):
        assert 1 <= report.n_candidates <= 8

    def test_candidates_not_already_in_ontology(self, scenario, report):
        for term_report in report.terms:
            assert not scenario.ontology.has_term(term_report.term)

    def test_completed_terms_have_all_steps(self, report):
        completed = report.completed_terms()
        assert completed, "no candidate made it through all four steps"
        for term_report in completed:
            assert term_report.polysemic is not None
            assert term_report.senses is not None
            assert term_report.n_senses >= 1
            assert term_report.propositions
            ranks = [p.rank for p in term_report.propositions]
            assert ranks == sorted(ranks)

    def test_skipped_terms_have_reasons(self, report):
        for term_report in report.terms:
            if not term_report.completed:
                assert term_report.skipped_reason

    def test_report_table_renders(self, report):
        table = report.to_table()
        assert "candidate" in table
        assert "best position" in table

    def test_monosemous_candidates_get_one_sense(self, report):
        for term_report in report.completed_terms():
            if term_report.polysemic is False:
                assert term_report.n_senses == 1

    def test_report_helpers(self):
        report = EnrichmentReport(
            terms=[
                TermReport("a", 1.0, 1, polysemic=True),
                TermReport("b", 0.5, 2, skipped_reason="too few contexts"),
            ]
        )
        assert report.n_candidates == 2
        assert len(report.polysemic_terms()) == 1
        assert len(report.completed_terms()) == 1
