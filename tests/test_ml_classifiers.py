"""API-conformance and accuracy tests across every repro.ml classifier."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.ml import DEFAULT_CLASSIFIERS, clone, make_classifier
from repro.ml.base import BaseClassifier


def gaussian_blobs(n_per=40, d=6, gap=3.0, seed=0, n_classes=2):
    """Linearly separable class-conditional Gaussians + labels."""
    rng = np.random.default_rng(seed)
    X, y = [], []
    for c in range(n_classes):
        center = np.zeros(d)
        center[c % d] = gap
        X.append(rng.normal(loc=center, scale=1.0, size=(n_per, d)))
        y.extend([c] * n_per)
    return np.vstack(X), np.asarray(y)


def xor_data(n_per=60, seed=0):
    """The XOR pattern: non-linear, solvable by trees/forests/knn."""
    rng = np.random.default_rng(seed)
    centers = [(0, 0, 0), (3, 3, 0), (0, 3, 1), (3, 0, 1)]
    X, y = [], []
    for cx, cy, label in centers:
        pts = rng.normal(loc=(cx, cy), scale=0.4, size=(n_per, 2))
        X.append(pts)
        y.extend([label] * n_per)
    return np.vstack(X), np.asarray(y)


@pytest.mark.parametrize("name", DEFAULT_CLASSIFIERS)
class TestClassifierContract:
    def _fit(self, name, X, y):
        model = make_classifier(name, seed=0)
        if name == "multinomial_nb":
            X = np.abs(X)  # multinomial needs non-negative features
        return model.fit(X, y), X

    def test_fit_returns_self(self, name):
        X, y = gaussian_blobs()
        model = make_classifier(name, seed=0)
        if name == "multinomial_nb":
            X = np.abs(X)
        assert model.fit(X, y) is model

    def test_separable_blobs_high_accuracy(self, name):
        X, y = gaussian_blobs(seed=1)
        model, X = self._fit(name, X, y)
        accuracy = float((model.predict(X) == y).mean())
        assert accuracy > 0.9, f"{name} accuracy {accuracy}"

    def test_string_labels_supported(self, name):
        X, y = gaussian_blobs(seed=2)
        labels = np.where(y == 0, "mono", "poly")
        model = make_classifier(name, seed=0)
        if name == "multinomial_nb":
            X = np.abs(X)
        model.fit(X, labels)
        predictions = model.predict(X)
        assert set(predictions.tolist()) <= {"mono", "poly"}

    def test_predict_before_fit_raises(self, name):
        X, __ = gaussian_blobs()
        with pytest.raises(NotFittedError):
            make_classifier(name, seed=0).predict(X)

    def test_rejects_mismatched_lengths(self, name):
        X, y = gaussian_blobs()
        with pytest.raises(ValidationError):
            make_classifier(name, seed=0).fit(X, y[:-1])

    def test_rejects_single_class(self, name):
        X, __ = gaussian_blobs()
        with pytest.raises(ValidationError):
            make_classifier(name, seed=0).fit(np.abs(X), np.zeros(X.shape[0]))

    def test_rejects_nan(self, name):
        X, y = gaussian_blobs()
        X[0, 0] = np.nan
        with pytest.raises(ValidationError):
            make_classifier(name, seed=0).fit(X, y)

    def test_clone_is_unfitted_with_same_params(self, name):
        model = make_classifier(name, seed=0)
        fresh = clone(model)
        assert type(fresh) is type(model)
        assert fresh.classes_ is None
        assert fresh.get_params() == model.get_params()

    def test_deterministic_given_seed(self, name):
        X, y = gaussian_blobs(seed=3)
        if name == "multinomial_nb":
            X = np.abs(X)
        a = make_classifier(name, seed=0).fit(X, y).predict(X)
        b = make_classifier(name, seed=0).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_multiclass_three_blobs(self, name):
        X, y = gaussian_blobs(seed=4, n_classes=3, gap=4.0)
        model, X = self._fit(name, X, y)
        accuracy = float((model.predict(X) == y).mean())
        assert accuracy > 0.85, f"{name} 3-class accuracy {accuracy}"


@pytest.mark.parametrize("name", ["gaussian_nb", "multinomial_nb", "logistic", "tree", "forest", "knn"])
class TestPredictProba:
    def test_rows_sum_to_one(self, name):
        X, y = gaussian_blobs(seed=5)
        model = make_classifier(name, seed=0)
        if name == "multinomial_nb":
            X = np.abs(X)
        model.fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (X.shape[0], 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0)


class TestNonLinearModels:
    @pytest.mark.parametrize("name", ["tree", "forest", "knn"])
    def test_xor_solved(self, name):
        X, y = xor_data(seed=6)
        model = make_classifier(name, seed=0).fit(X, y)
        accuracy = float((model.predict(X) == y).mean())
        assert accuracy > 0.95

    def test_logistic_fails_xor(self):
        # Sanity check that XOR really is non-linear for our data.
        X, y = xor_data(seed=6)
        model = make_classifier("logistic").fit(X, y)
        accuracy = float((model.predict(X) == y).mean())
        assert accuracy < 0.8


class TestTreeSpecifics:
    def test_max_depth_respected(self):
        from repro.ml.tree import DecisionTreeClassifier

        X, y = xor_data(seed=7)
        tree = DecisionTreeClassifier(max_depth=2, seed=0).fit(X, y)
        assert tree.depth() <= 2

    def test_entropy_criterion_works(self):
        from repro.ml.tree import DecisionTreeClassifier

        X, y = gaussian_blobs(seed=8)
        tree = DecisionTreeClassifier(criterion="entropy", seed=0).fit(X, y)
        assert float((tree.predict(X) == y).mean()) > 0.9

    def test_bad_params(self):
        from repro.ml.tree import DecisionTreeClassifier

        with pytest.raises(ValidationError):
            DecisionTreeClassifier(criterion="nope")
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1)


class TestForestSpecifics:
    def test_more_trees_not_worse_on_test(self):
        from repro.ml.forest import RandomForestClassifier

        X, y = xor_data(n_per=80, seed=9)
        X_test, y_test = xor_data(n_per=30, seed=10)
        small = RandomForestClassifier(n_estimators=3, seed=0).fit(X, y)
        large = RandomForestClassifier(n_estimators=40, seed=0).fit(X, y)
        acc_small = float((small.predict(X_test) == y_test).mean())
        acc_large = float((large.predict(X_test) == y_test).mean())
        assert acc_large >= acc_small - 0.05

    def test_bad_n_estimators(self):
        from repro.ml.forest import RandomForestClassifier

        with pytest.raises(ValidationError):
            RandomForestClassifier(n_estimators=0)


class TestKnnSpecifics:
    def test_k_one_memorises(self):
        from repro.ml.knn import KNeighborsClassifier

        X, y = gaussian_blobs(seed=11)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert float((model.predict(X) == y).mean()) == 1.0

    def test_cosine_metric(self):
        from repro.ml.knn import KNeighborsClassifier

        X, y = gaussian_blobs(seed=12, gap=5.0)
        model = KNeighborsClassifier(n_neighbors=3, metric="cosine").fit(X, y)
        assert float((model.predict(X) == y).mean()) > 0.8

    def test_bad_params(self):
        from repro.ml.knn import KNeighborsClassifier

        with pytest.raises(ValidationError):
            KNeighborsClassifier(n_neighbors=0)
        with pytest.raises(ValidationError):
            KNeighborsClassifier(metric="hamming")


class TestSvmSpecifics:
    def test_decision_function_shapes(self):
        from repro.ml.svm import LinearSVC

        X, y = gaussian_blobs(seed=13)
        model = LinearSVC(seed=0).fit(X, y)
        assert model.decision_function(X).shape == (X.shape[0],)
        X3, y3 = gaussian_blobs(seed=13, n_classes=3)
        model3 = LinearSVC(seed=0).fit(X3, y3)
        assert model3.decision_function(X3).shape == (X3.shape[0], 3)

    def test_bad_params(self):
        from repro.ml.svm import LinearSVC

        with pytest.raises(ValidationError):
            LinearSVC(lam=0)
        with pytest.raises(ValidationError):
            LinearSVC(n_epochs=0)


class TestLogisticSpecifics:
    def test_converges_and_reports_iterations(self):
        from repro.ml.logistic import LogisticRegression

        X, y = gaussian_blobs(seed=14)
        model = LogisticRegression(max_iter=300).fit(X, y)
        assert 1 <= model.n_iter_ <= 300

    def test_bad_params(self):
        from repro.ml.logistic import LogisticRegression

        with pytest.raises(ValidationError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValidationError):
            LogisticRegression(l2=-1)


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown classifier"):
            make_classifier("perceptron")

    def test_all_names_resolve(self):
        for name in DEFAULT_CLASSIFIERS:
            assert isinstance(make_classifier(name, seed=0), BaseClassifier)
