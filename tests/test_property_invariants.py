"""Cross-module property-based tests on core invariants (hypothesis)."""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.algorithms import cluster
from repro.clustering.model import ClusterStats
from repro.clustering.similarity import normalize_rows
from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.linkage.context import find_occurrences
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.io import ontology_from_json, ontology_to_json
from repro.ontology.snapshot import snapshot_before
from repro.ontology.stats import polysemy_histogram
from repro.polysemy.cache import FeatureCache
from repro.polysemy.cache_store import DiskCacheStore, MemoryCacheStore
from repro.polysemy.dataset import build_polysemy_dataset
from repro.scenarios import make_enrichment_scenario

# -- strategies ---------------------------------------------------------------

word = st.sampled_from(
    ["cornea", "injury", "wound", "healing", "retina", "lesion", "cell",
     "tissue", "grade", "acute"]
)
sentence = st.lists(word, min_size=1, max_size=12)
document_sentences = st.lists(sentence, min_size=1, max_size=5)


class TestOntologyInvariants:
    @given(
        n=st.integers(min_value=2, max_value=40),
        poly=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_generated_ontology_invariants(self, n, poly, seed):
        spec = GeneratorSpec(
            n_concepts=n,
            n_roots=min(2, n),
            polysemy_histogram={2: poly} if poly else {},
        )
        onto = OntologyGenerator(spec, seed=seed).generate()
        onto.validate()
        # every polysemic term names >= 2 distinct concepts
        for term in onto.polysemic_terms():
            assert len(onto.concepts_for_term(term)) >= 2
        # histogram total = injected count
        assert sum(polysemy_histogram(onto).values()) == poly
        # fathers/sons symmetric
        for cid in onto.concept_ids():
            for father in onto.fathers(cid):
                assert cid in onto.sons(father)

    @given(
        n=st.integers(min_value=3, max_value=30),
        cutoff=st.integers(min_value=1990, max_value=2016),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_snapshot_is_subset_and_valid(self, n, cutoff, seed):
        spec = GeneratorSpec(n_concepts=n, n_roots=min(2, n))
        onto = OntologyGenerator(spec, seed=seed).generate()
        snap = snapshot_before(onto, cutoff)
        snap.validate()
        assert set(snap.concept_ids()) <= set(onto.concept_ids())
        for concept in snap:
            assert concept.year_added < cutoff

    @given(
        n=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_json_roundtrip_is_lossless(self, n, seed):
        spec = GeneratorSpec(n_concepts=n, n_roots=min(2, n))
        onto = OntologyGenerator(spec, seed=seed).generate()
        back = ontology_from_json(ontology_to_json(onto))
        assert back.terms() == onto.terms()
        assert back.concept_ids() == onto.concept_ids()
        for cid in onto.concept_ids():
            assert back.fathers(cid) == onto.fathers(cid)


class TestClusteringInvariants:
    @given(
        n=st.integers(min_value=6, max_value=24),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_algorithm_produces_valid_partition(self, n, k, seed):
        k = min(k, n)
        rng = np.random.default_rng(seed)
        matrix = np.abs(rng.normal(size=(n, 8))) + 1e-6
        for method in ("rb", "direct", "agglo"):
            solution = cluster(matrix, k, method=method, seed=0)
            labels = np.asarray(solution.labels)
            assert labels.shape == (n,)
            assert set(labels.tolist()) == set(range(k))
            stats = solution.stats
            assert stats.sizes.sum() == n
            assert np.all(stats.isim <= 1.0 + 1e-9)
            assert np.all(stats.esim >= -1e-9)

    @given(
        n=st.integers(min_value=4, max_value=20),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_isim_at_least_esim_for_kmeans_solutions(self, n, seed):
        # For an I2-optimised 2-way split of non-negative data, clusters
        # must be internally at least as coherent as externally.
        rng = np.random.default_rng(seed)
        matrix = np.abs(rng.normal(size=(n, 6))) + 1e-6
        solution = cluster(matrix, 2, method="rbr", seed=1)
        stats = solution.stats
        assert stats.mean_isim() >= stats.mean_esim() - 1e-6

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_normalize_rows_idempotent(self, n):
        rng = np.random.default_rng(n)
        matrix = rng.normal(size=(n, 5))
        once = normalize_rows(matrix)
        twice = normalize_rows(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestRetrievalConsistency:
    @given(document_sentences, st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_find_occurrences_matches_contexts_for_term(self, sentences, window):
        corpus = Corpus([Document("d0", sentences)])
        term = sentences[0][0]
        via_batch = find_occurrences(corpus, [term], window=window)[term]
        via_single = corpus.contexts_for_term(term, window=window)
        # single-token terms cannot overlap, so both retrievals agree
        assert len(via_batch) == len(via_single)
        for batch_ctx, single_ctx in zip(via_batch, via_single):
            assert batch_ctx == single_ctx.tokens


# -- cache-store strategies ---------------------------------------------------

payload_dtype = st.sampled_from(["<f8", "<f4", "<i8", "<i4", "<u2", "<c16"])
payload_shape = st.one_of(
    st.tuples(),  # 0-d scalar array
    st.tuples(st.integers(min_value=0, max_value=23)),
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ),
)


def payload_array(dtype_str: str, shape: tuple, seed: int) -> np.ndarray:
    """A deterministic array, NaN/inf-spiked for float dtypes."""
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype_str)
    if dtype.kind == "c":
        values = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    elif dtype.kind == "f":
        values = rng.normal(size=shape) * 1e6
    else:
        values = rng.integers(0, 1000, size=shape)
    array = np.asarray(values).astype(dtype)
    if dtype.kind in "fc" and array.size:
        flat = array.reshape(-1).copy()
        spikes = rng.integers(0, flat.size, size=min(3, flat.size))
        flat[spikes[0]] = np.nan
        if len(spikes) > 1:
            flat[spikes[1]] = np.inf
        if len(spikes) > 2:
            flat[spikes[2]] = -np.inf
        array = flat.reshape(shape)
    return array


def byte_identical(a: np.ndarray, b: np.ndarray) -> bool:
    return (
        a is not None
        and b is not None
        and a.dtype == b.dtype
        and a.shape == b.shape
        and a.tobytes() == b.tobytes()
    )


class TestCacheStoreParity:
    """DiskCacheStore must be indistinguishable from the in-memory dict."""

    @given(
        dtype_str=payload_dtype,
        shape=payload_shape,
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_disk_roundtrip_matches_memory_byte_identically(
        self, dtype_str, shape, seed
    ):
        array = payload_array(dtype_str, shape, seed)
        key = FeatureCache.key("corpus-fp", f"term {seed}", "config-fp")
        memory = MemoryCacheStore()
        memory.put(key, array)
        with tempfile.TemporaryDirectory() as cache_dir:
            disk = DiskCacheStore(cache_dir)
            disk.put(key, array)
            same_handle = disk.get(key)
            reopened = DiskCacheStore(cache_dir).get(key)
        expected = memory.get(key)
        assert byte_identical(same_handle, expected)
        assert byte_identical(reopened, expected)

    @given(
        n_entries=st.integers(min_value=1, max_value=6),
        cut=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_truncated_shard_never_yields_a_wrong_vector(
        self, n_entries, cut, seed
    ):
        arrays = {
            f"term {i}": payload_array("<f8", (23,), seed + i)
            for i in range(n_entries)
        }
        with tempfile.TemporaryDirectory() as cache_dir:
            writer = DiskCacheStore(cache_dir)
            for term, array in arrays.items():
                writer.put(FeatureCache.key("c", term, "f"), array)
            shard = next(Path(cache_dir).glob("*/shard-*.bin"))
            data = shard.read_bytes()
            shard.write_bytes(data[: int(len(data) * cut)])
            survivor = DiskCacheStore(cache_dir)
            for term, array in arrays.items():
                got = survivor.get(FeatureCache.key("c", term, "f"))
                # Simulated partial write: an entry either survives
                # byte-identically or is a clean miss — never garbage.
                assert got is None or byte_identical(got, array)

    @given(
        n_entries=st.integers(min_value=1, max_value=6),
        cut=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_truncated_index_never_yields_a_wrong_vector(
        self, n_entries, cut, seed
    ):
        arrays = {
            f"term {i}": payload_array("<f4", (11,), seed + i)
            for i in range(n_entries)
        }
        with tempfile.TemporaryDirectory() as cache_dir:
            writer = DiskCacheStore(cache_dir)
            for term, array in arrays.items():
                writer.put(FeatureCache.key("c", term, "f"), array)
            index = next(Path(cache_dir).glob("*/index.jsonl"))
            data = index.read_bytes()
            index.write_bytes(data[: int(len(data) * cut)])
            survivor = DiskCacheStore(cache_dir)
            for term, array in arrays.items():
                got = survivor.get(FeatureCache.key("c", term, "f"))
                assert got is None or byte_identical(got, array)

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_seeded_corpus_features_roundtrip_through_disk(self, seed):
        scenario = make_enrichment_scenario(
            seed=seed, n_concepts=12, docs_per_concept=3,
            polysemy_histogram={2: 2},
        )
        kwargs = dict(min_contexts=2, seed=0)
        in_memory = build_polysemy_dataset(
            scenario.ontology, scenario.corpus,
            cache=FeatureCache(), **kwargs,
        )
        with tempfile.TemporaryDirectory() as cache_dir:
            persisted = build_polysemy_dataset(
                scenario.ontology, scenario.corpus,
                cache=FeatureCache(store=DiskCacheStore(cache_dir)),
                **kwargs,
            )
            # A fresh handle (a new run) must rebuild the identical
            # matrix purely from disk.
            warm_cache = FeatureCache(store=DiskCacheStore(cache_dir))
            warm = build_polysemy_dataset(
                scenario.ontology, scenario.corpus,
                cache=warm_cache, **kwargs,
            )
        assert byte_identical(persisted.X, in_memory.X)
        assert byte_identical(warm.X, in_memory.X)
        assert warm.terms == in_memory.terms
        assert warm_cache.stats["misses"] == 0
        assert warm_cache.stats["disk_hits"] == in_memory.n_samples


# -- document-stream strategies ----------------------------------------------

stream_documents = st.lists(document_sentences, min_size=2, max_size=6)


class TestDocumentStreamInvariants:
    """Streaming adds are indistinguishable from a fresh build.

    The continuous-enrichment path leans on this: N single-document
    ``add_documents`` calls must land on the exact index (and the exact
    fingerprint chain) one cold build over all N+seed documents
    produces — monolithic and sharded alike.  Any drift here would
    silently poison the streaming cache carry-forward.
    """

    @staticmethod
    def query_terms(documents):
        terms = {"cornea", "wound", "healing", "absent-term"}
        for doc in documents:
            first = doc.sentences[0]
            terms.add(first[0])
            if len(first) >= 2:
                terms.add(f"{first[0]} {first[1]}")
        return sorted(terms)

    @staticmethod
    def assert_same_surface(candidate, reference, terms):
        assert candidate.fingerprint() == reference.fingerprint()
        assert candidate.n_documents() == reference.n_documents()
        assert candidate.n_tokens() == reference.n_tokens()
        assert candidate.doc_lengths() == reference.doc_lengths()
        for term in terms:
            assert candidate.phrase_occurrences(term) == \
                reference.phrase_occurrences(term), term
            for window in (1, 4):
                assert candidate.contexts_for_term(term, window=window) == \
                    reference.contexts_for_term(term, window=window), term

    @given(stream_documents, st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_single_doc_adds_equal_fresh_build(self, sentence_lists, n_shards):
        from repro.corpus.index import CorpusIndex, ShardedCorpusIndex

        documents = [
            Document(f"doc-{position}", sentences)
            for position, sentences in enumerate(sentence_lists)
        ]
        terms = self.query_terms(documents)
        fresh = CorpusIndex(documents)

        streamed = CorpusIndex(documents[:1])
        for doc in documents[1:]:
            streamed.add_documents([doc])
        self.assert_same_surface(streamed, fresh, terms)

        streamed_sharded = ShardedCorpusIndex(
            documents[:1], n_shards=n_shards
        )
        for doc in documents[1:]:
            streamed_sharded.add_documents([doc])
        # The sharded stream must match the *monolithic* cold build too:
        # one fingerprint chain, whatever the layout.
        self.assert_same_surface(streamed_sharded, fresh, terms)
        self.assert_same_surface(
            streamed_sharded,
            ShardedCorpusIndex(documents, n_shards=n_shards),
            terms,
        )

    @given(stream_documents)
    @settings(max_examples=10, deadline=None)
    def test_streamed_corpus_matches_fresh_corpus_index(self, sentence_lists):
        """Corpus.add keeps its cached index on the fresh-build chain."""
        documents = [
            Document(f"doc-{position}", sentences)
            for position, sentences in enumerate(sentence_lists)
        ]
        corpus = Corpus(documents[:1])
        corpus.index()  # cache it, so adds patch in place
        for doc in documents[1:]:
            corpus.add(doc)
        fresh = Corpus(documents)
        self.assert_same_surface(
            corpus.index(), fresh.index(), self.query_terms(documents)
        )
