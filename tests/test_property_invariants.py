"""Cross-module property-based tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.algorithms import cluster
from repro.clustering.model import ClusterStats
from repro.clustering.similarity import normalize_rows
from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.linkage.context import find_occurrences
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.ontology.io import ontology_from_json, ontology_to_json
from repro.ontology.snapshot import snapshot_before
from repro.ontology.stats import polysemy_histogram

# -- strategies ---------------------------------------------------------------

word = st.sampled_from(
    ["cornea", "injury", "wound", "healing", "retina", "lesion", "cell",
     "tissue", "grade", "acute"]
)
sentence = st.lists(word, min_size=1, max_size=12)
document_sentences = st.lists(sentence, min_size=1, max_size=5)


class TestOntologyInvariants:
    @given(
        n=st.integers(min_value=2, max_value=40),
        poly=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_generated_ontology_invariants(self, n, poly, seed):
        spec = GeneratorSpec(
            n_concepts=n,
            n_roots=min(2, n),
            polysemy_histogram={2: poly} if poly else {},
        )
        onto = OntologyGenerator(spec, seed=seed).generate()
        onto.validate()
        # every polysemic term names >= 2 distinct concepts
        for term in onto.polysemic_terms():
            assert len(onto.concepts_for_term(term)) >= 2
        # histogram total = injected count
        assert sum(polysemy_histogram(onto).values()) == poly
        # fathers/sons symmetric
        for cid in onto.concept_ids():
            for father in onto.fathers(cid):
                assert cid in onto.sons(father)

    @given(
        n=st.integers(min_value=3, max_value=30),
        cutoff=st.integers(min_value=1990, max_value=2016),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_snapshot_is_subset_and_valid(self, n, cutoff, seed):
        spec = GeneratorSpec(n_concepts=n, n_roots=min(2, n))
        onto = OntologyGenerator(spec, seed=seed).generate()
        snap = snapshot_before(onto, cutoff)
        snap.validate()
        assert set(snap.concept_ids()) <= set(onto.concept_ids())
        for concept in snap:
            assert concept.year_added < cutoff

    @given(
        n=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_json_roundtrip_is_lossless(self, n, seed):
        spec = GeneratorSpec(n_concepts=n, n_roots=min(2, n))
        onto = OntologyGenerator(spec, seed=seed).generate()
        back = ontology_from_json(ontology_to_json(onto))
        assert back.terms() == onto.terms()
        assert back.concept_ids() == onto.concept_ids()
        for cid in onto.concept_ids():
            assert back.fathers(cid) == onto.fathers(cid)


class TestClusteringInvariants:
    @given(
        n=st.integers(min_value=6, max_value=24),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_algorithm_produces_valid_partition(self, n, k, seed):
        k = min(k, n)
        rng = np.random.default_rng(seed)
        matrix = np.abs(rng.normal(size=(n, 8))) + 1e-6
        for method in ("rb", "direct", "agglo"):
            solution = cluster(matrix, k, method=method, seed=0)
            labels = np.asarray(solution.labels)
            assert labels.shape == (n,)
            assert set(labels.tolist()) == set(range(k))
            stats = solution.stats
            assert stats.sizes.sum() == n
            assert np.all(stats.isim <= 1.0 + 1e-9)
            assert np.all(stats.esim >= -1e-9)

    @given(
        n=st.integers(min_value=4, max_value=20),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_isim_at_least_esim_for_kmeans_solutions(self, n, seed):
        # For an I2-optimised 2-way split of non-negative data, clusters
        # must be internally at least as coherent as externally.
        rng = np.random.default_rng(seed)
        matrix = np.abs(rng.normal(size=(n, 6))) + 1e-6
        solution = cluster(matrix, 2, method="rbr", seed=1)
        stats = solution.stats
        assert stats.mean_isim() >= stats.mean_esim() - 1e-6

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_normalize_rows_idempotent(self, n):
        rng = np.random.default_rng(n)
        matrix = rng.normal(size=(n, 5))
        once = normalize_rows(matrix)
        twice = normalize_rows(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestRetrievalConsistency:
    @given(document_sentences, st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_find_occurrences_matches_contexts_for_term(self, sentences, window):
        corpus = Corpus([Document("d0", sentences)])
        term = sentences[0][0]
        via_batch = find_occurrences(corpus, [term], window=window)[term]
        via_single = corpus.contexts_for_term(term, window=window)
        # single-token terms cannot overlap, so both retrievals agree
        assert len(via_batch) == len(via_single)
        for batch_ctx, single_ctx in zip(via_batch, via_single):
            assert batch_ctx == single_ctx.tokens
