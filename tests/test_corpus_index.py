"""Parity tests: CorpusIndex answers must match the legacy document scans.

The reference implementations below are verbatim ports of the pre-index
retrieval code (``Corpus.contexts_for_term``'s greedy document scan and
``linkage.context.find_occurrence_records``'s one-pass multi-term scan).
Randomized corpora over a tiny vocabulary force the hard cases: repeated
tokens, overlapping occurrences, multi-token needles, and windows clipped
at document boundaries.
"""

import random

import pytest

from repro.corpus.corpus import Corpus, TermContext
from repro.corpus.document import Document
from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
from repro.errors import CorpusError


# -- reference (legacy) implementations -------------------------------------


def scan_contexts(corpus, term, *, window=10):
    """The pre-index Corpus.contexts_for_term document scan, verbatim."""
    if isinstance(term, str):
        needle = tuple(term.lower().split())
    else:
        needle = tuple(t.lower() for t in term)
    span = len(needle)
    contexts = []
    for doc in corpus:
        tokens = doc.tokens()
        n = len(tokens)
        i = 0
        while i <= n - span:
            if tuple(tokens[i : i + span]) == needle:
                left = tokens[max(0, i - window) : i]
                right = tokens[i + span : i + span + window]
                contexts.append(
                    TermContext(
                        doc_id=doc.doc_id,
                        tokens=tuple(left + right),
                        position=i,
                    )
                )
                i += span
            else:
                i += 1
    return contexts


def scan_occurrence_records(corpus, terms, *, window=10):
    """The pre-index find_occurrence_records one-pass scan, verbatim."""
    needles = {}
    by_first = {}
    for term in terms:
        tokens = tuple(term.lower().split())
        if not tokens:
            continue
        needles[" ".join(tokens)] = []
        by_first.setdefault(tokens[0], []).append(tokens)
    for candidates in by_first.values():
        candidates.sort(key=len, reverse=True)
    for doc in corpus:
        tokens = doc.tokens()
        n = len(tokens)
        for i, token in enumerate(tokens):
            for needle in by_first.get(token, ()):
                span = len(needle)
                if i + span <= n and tuple(tokens[i : i + span]) == needle:
                    left = tokens[max(0, i - window) : i]
                    right = tokens[i + span : i + span + window]
                    needles[" ".join(needle)].append(
                        (doc.doc_id, tuple(left + right))
                    )
                    break
    return needles


def random_corpus(rng, *, n_docs=6, vocab=("a", "b", "c", "d")):
    docs = []
    for i in range(n_docs):
        n_sentences = rng.randint(1, 4)
        sentences = [
            [rng.choice(vocab) for _ in range(rng.randint(1, 12))]
            for _ in range(n_sentences)
        ]
        docs.append(Document(f"d{i}", sentences))
    return Corpus(docs)


def random_terms(rng, *, vocab=("a", "b", "c", "d"), n_terms=8):
    terms = set()
    while len(terms) < n_terms:
        length = rng.randint(1, 3)
        terms.add(" ".join(rng.choice(vocab) for _ in range(length)))
    return sorted(terms)


# -- randomized parity -------------------------------------------------------


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_contexts_match_legacy_scan(self, seed):
        rng = random.Random(seed)
        corpus = random_corpus(rng)
        index = CorpusIndex(corpus)
        for term in random_terms(rng):
            for window in (1, 2, 5, 50):
                assert index.contexts_for_term(term, window=window) == \
                    scan_contexts(corpus, term, window=window), (term, window)

    @pytest.mark.parametrize("seed", range(12))
    def test_frequencies_match_legacy_scan(self, seed):
        rng = random.Random(seed)
        corpus = random_corpus(rng)
        index = CorpusIndex(corpus)
        for term in random_terms(rng):
            legacy = scan_contexts(corpus, term, window=1)
            assert index.term_frequency(term) == len(legacy)
            assert index.document_frequency(term) == \
                len({c.doc_id for c in legacy})

    @pytest.mark.parametrize("seed", range(12))
    def test_occurrence_records_match_legacy_scan(self, seed):
        rng = random.Random(seed)
        corpus = random_corpus(rng)
        index = CorpusIndex(corpus)
        terms = random_terms(rng)
        for window in (1, 3, 20):
            assert index.occurrence_records(terms, window=window) == \
                scan_occurrence_records(corpus, terms, window=window)

    @pytest.mark.parametrize("seed", range(6))
    def test_corpus_delegates_to_index(self, seed):
        rng = random.Random(seed)
        corpus = random_corpus(rng)
        for term in random_terms(rng, n_terms=4):
            assert corpus.contexts_for_term(term, window=3) == \
                scan_contexts(corpus, term, window=3)
            assert corpus.term_frequency(term) == \
                len(scan_contexts(corpus, term, window=1))


# -- targeted edge cases -----------------------------------------------------


class TestEdgeSemantics:
    def test_self_overlapping_term_consumed_greedily(self):
        # "a a" in "a a a a a": the scan steps over matched tokens.
        corpus = Corpus([Document("d", [["a", "a", "a", "a", "a"]])])
        index = CorpusIndex(corpus)
        contexts = index.contexts_for_term("a a", window=2)
        assert [c.position for c in contexts] == [0, 2]
        assert index.term_frequency("a a") == 2

    def test_occurrence_records_report_overlaps(self):
        # The multi-term retrieval reports every start position instead.
        corpus = Corpus([Document("d", [["a", "a", "a", "a"]])])
        index = CorpusIndex(corpus)
        records = index.occurrence_records(["a a"], window=1)
        assert len(records["a a"]) == 3

    def test_longest_match_wins_at_shared_start(self):
        corpus = Corpus(
            [Document("d", [["corneal", "injury", "repair", "done"]])]
        )
        index = CorpusIndex(corpus)
        records = index.occurrence_records(
            ["corneal injury", "corneal injury repair"], window=2
        )
        assert records["corneal injury"] == []
        assert records["corneal injury repair"] == [("d", ("done",))]

    def test_window_clips_at_document_boundaries(self):
        corpus = Corpus(
            [
                Document("d1", [["x", "term", "y"]]),
                Document("d2", [["term"]]),
            ]
        )
        index = CorpusIndex(corpus)
        contexts = index.contexts_for_term("term", window=50)
        assert contexts[0].tokens == ("x", "y")
        assert contexts[1].tokens == ()

    def test_window_never_crosses_documents(self):
        corpus = Corpus(
            [
                Document("d1", [["alpha", "beta"]]),
                Document("d2", [["term", "gamma"]]),
            ]
        )
        index = CorpusIndex(corpus)
        (ctx,) = index.contexts_for_term("term", window=10)
        assert "beta" not in ctx.tokens

    def test_multi_token_needle_anchors_on_rarest_token(self):
        # "b" is rarer than "a"; lookup must still find every occurrence.
        corpus = Corpus(
            [Document("d", [["a", "a", "b", "a", "a", "b", "a"]])]
        )
        index = CorpusIndex(corpus)
        contexts = index.contexts_for_term("a b a", window=1)
        assert [c.position for c in contexts] == [1, 4]

    def test_case_insensitive_lookup(self):
        corpus = Corpus([Document("d", [["corneal", "injury"]])])
        index = CorpusIndex(corpus)
        assert index.term_frequency(["Corneal", "Injury"]) == 1

    def test_mixed_case_document_is_findable(self):
        # Regression: postings used to keep raw doc.tokens() while every
        # lookup lower-cased its needle, so a Document constructed
        # directly with mixed-case sentences silently returned zero
        # occurrences.  Tokens are now normalised at build time.
        corpus = Corpus([Document("d", [["Corneal", "INJURY", "heals"]])])
        index = CorpusIndex(corpus)
        assert index.term_frequency("corneal injury") == 1
        assert index.term_frequency("Corneal Injury") == 1
        assert index.token_frequency("INJURY") == 1
        (context,) = index.contexts_for_term("corneal injury")
        assert context.tokens == ("heals",)
        assert index.occurrence_records(["corneal injury"]) == {
            "corneal injury": [("d", ("heals",))]
        }
        assert index.token_documents() == [["corneal", "injury", "heals"]]

    def test_mixed_case_and_lower_case_corpora_share_fingerprint(self):
        mixed = CorpusIndex(Corpus([Document("d", [["Corneal", "Injury"]])]))
        lower = CorpusIndex(Corpus([Document("d", [["corneal", "injury"]])]))
        assert mixed.fingerprint() == lower.fingerprint()

    def test_unknown_term_is_empty_not_error(self):
        index = CorpusIndex(Corpus([Document("d", [["a"]])]))
        assert index.contexts_for_term("zzz") == []
        assert index.term_frequency("zzz") == 0
        assert index.document_frequency("zzz z") == 0

    def test_empty_term_raises(self):
        index = CorpusIndex(Corpus([Document("d", [["a"]])]))
        with pytest.raises(CorpusError):
            index.contexts_for_term("")
        with pytest.raises(CorpusError):
            index.term_frequency([])

    def test_bad_window_raises(self):
        index = CorpusIndex(Corpus([Document("d", [["a"]])]))
        with pytest.raises(CorpusError):
            index.contexts_for_term("a", window=0)

    def test_statistics(self):
        corpus = Corpus(
            [
                Document("d1", [["a", "b"], ["c"]]),
                Document("d2", [["a"]]),
            ]
        )
        index = CorpusIndex(corpus)
        assert index.n_documents() == 2
        assert index.n_tokens() == 4
        assert index.vocabulary_size() == 3
        assert index.doc_lengths() == {"d1": 3, "d2": 1}
        assert index.token_documents() == [["a", "b", "c"], ["a"]]
        assert index.token_frequency("a") == 2
        assert index.token_frequency("zzz") == 0


# -- the corpus-level cache --------------------------------------------------


class TestCorpusIndexCache:
    def test_index_is_cached(self):
        corpus = Corpus([Document("d", [["a", "b"]])])
        assert corpus.index() is corpus.index()

    def test_add_patches_cached_index_in_place(self):
        corpus = Corpus([Document("d1", [["a"]])])
        first = corpus.index()
        corpus.add(Document("d2", [["a"]]))
        patched = corpus.index()
        assert patched is first  # extended, not rebuilt
        assert patched.n_documents() == 2
        assert corpus.term_frequency("a") == 2
        assert patched.fingerprint() == CorpusIndex(corpus).fingerprint()

    def test_add_before_first_index_builds_covering_index(self):
        corpus = Corpus([Document("d1", [["a"]])])
        corpus.add(Document("d2", [["a", "b"]]))
        assert corpus.index().n_documents() == 2
        assert corpus.term_frequency("a") == 2

    def test_add_duplicate_id_raises_identical_error(self):
        corpus = Corpus([Document("d1", [["a"]])])
        with pytest.raises(CorpusError, match="duplicate document id 'd1'"):
            corpus.add(Document("d1", [["b"]]))

    def test_init_duplicate_ids_raise(self):
        with pytest.raises(CorpusError, match="duplicate document ids"):
            Corpus([Document("d", [["a"]]), Document("d", [["b"]])])

    def test_document_lookup_after_add(self):
        corpus = Corpus([Document("d1", [["a"]])])
        corpus.add(Document("d2", [["b"]]))
        assert corpus.document("d2").doc_id == "d2"
        with pytest.raises(CorpusError, match="unknown document id"):
            corpus.document("d3")


class TestDocLengthsCache:
    """`doc_lengths()` returns one cached dict, invalidated on growth."""

    def test_repeat_calls_share_one_dict(self):
        index = CorpusIndex(
            [Document("d1", [["a", "b"]]), Document("d2", [["c"]])]
        )
        first = index.doc_lengths()
        assert first == {"d1": 2, "d2": 1}
        assert index.doc_lengths() is first  # allocation-free repeat

    def test_add_documents_invalidates(self):
        index = CorpusIndex([Document("d1", [["a", "b"]])])
        before = index.doc_lengths()
        index.add_documents([Document("d2", [["c", "d", "e"]])])
        after = index.doc_lengths()
        assert after is not before
        assert after == {"d1": 2, "d2": 3}
        assert index.doc_lengths() is after

    def test_empty_add_keeps_cache(self):
        index = CorpusIndex([Document("d1", [["a"]])])
        cached = index.doc_lengths()
        index.add_documents([])
        assert index.doc_lengths() is cached

    def test_sharded_merge_is_cached_and_invalidated(self):
        docs = [Document(f"d{i}", [["t"] * (i + 1)]) for i in range(5)]
        sharded = ShardedCorpusIndex(docs, n_shards=2)
        first = sharded.doc_lengths()
        assert first == {f"d{i}": i + 1 for i in range(5)}
        assert sharded.doc_lengths() is first
        sharded.add_documents([Document("d5", [["t"] * 9])])
        assert sharded.doc_lengths()["d5"] == 9
        assert sharded.doc_lengths() is sharded.doc_lengths()
