"""Tests for repro.text.tokenizer and repro.text.sentences."""

import pytest
from hypothesis import given, strategies as st

from repro.text.sentences import split_sentences
from repro.text.tokenizer import tokenize, tokenize_lower


class TestTokenize:
    def test_simple_sentence(self):
        assert tokenize("The cornea heals") == ["The", "cornea", "heals"]

    def test_strips_punctuation(self):
        assert tokenize("wound, (healing).") == ["wound", "healing"]

    def test_keeps_internal_hyphen(self):
        assert tokenize("re-epithelialization occurs") == [
            "re-epithelialization",
            "occurs",
        ]

    def test_keeps_apostrophe(self):
        assert tokenize("crohn's disease") == ["crohn's", "disease"]

    def test_alphanumeric_mixture(self):
        assert tokenize("il-2 and p53 levels") == ["il-2", "and", "p53", "levels"]

    def test_accented_characters(self):
        assert tokenize("maladie de la cornée") == ["maladie", "de", "la", "cornée"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            tokenize(None)

    def test_lowercase_variant(self):
        assert tokenize_lower("Corneal Injuries") == ["corneal", "injuries"]

    @given(st.text(max_size=200))
    def test_never_returns_empty_tokens(self, text):
        assert all(token for token in tokenize(text))

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=200))
    def test_tokens_are_substrings(self, text):
        for token in tokenize(text):
            assert token in text


class TestSplitSentences:
    def test_two_sentences(self):
        out = split_sentences("Wound healed. Cornea was clear.")
        assert out == ["Wound healed.", "Cornea was clear."]

    def test_protects_eg(self):
        out = split_sentences("Drugs (e.g. Timolol) were used. Outcome was good.")
        assert len(out) == 2
        assert out[0].startswith("Drugs")

    def test_protects_et_al(self):
        out = split_sentences("Smith et al. Reported improvement.")
        assert len(out) == 1

    def test_decimal_not_split(self):
        out = split_sentences("Significance was p < 0.05 overall. Next sentence.")
        assert len(out) == 2

    def test_question_and_exclamation(self):
        out = split_sentences("Does it heal? It does! Good.")
        assert len(out) == 3

    def test_empty_and_whitespace(self):
        assert split_sentences("") == []
        assert split_sentences("   ") == []

    def test_single_sentence_no_terminator(self):
        assert split_sentences("corneal wound healing") == ["corneal wound healing"]

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            split_sentences(42)
