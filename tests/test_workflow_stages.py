"""The staged pipeline: stage wiring, batching determinism, and timings."""

import numpy as np
import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.index import ShardedCorpusIndex
from repro.errors import ValidationError
from repro.extraction.extractor import RankedTerm
from repro.ontology.model import Concept, Ontology
from repro.polysemy.cache import FeatureCache
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import (
    CandidateWork,
    DetectStage,
    ExtractStage,
    InduceStage,
    LinkStage,
    OntologyEnricher,
    PipelineContext,
)
from repro.workflow.report import TermReport


def report_fingerprint(report):
    """Everything the report decided, as a comparable structure."""
    rows = []
    for t in report.terms:
        senses = None
        if t.senses is not None:
            senses = (
                t.senses.k,
                tuple(
                    (s.sense_id, s.top_features, s.context_indices)
                    for s in t.senses.senses
                ),
            )
        rows.append(
            (
                t.term,
                t.extraction_score,
                t.extraction_rank,
                t.n_contexts,
                t.polysemic,
                senses,
                tuple(
                    (p.rank, p.term, p.concept_ids, p.cosine)
                    for p in t.propositions
                ),
                t.skipped_reason,
            )
        )
    return tuple(rows)


@pytest.fixture(scope="module")
def scenario():
    return make_enrichment_scenario(
        seed=7, n_concepts=25, docs_per_concept=5,
        polysemy_histogram={2: 3},
    )


def enrich(scenario, **config_kwargs):
    config = EnrichmentConfig(
        n_candidates=6, min_contexts=3, **config_kwargs
    )
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )
    return enricher.enrich(scenario.corpus)


class TestStagedPipelineParity:
    def test_rerun_is_deterministic(self, scenario):
        first = enrich(scenario)
        second = enrich(scenario)
        assert report_fingerprint(first) == report_fingerprint(second)

    def test_workers_do_not_change_the_report(self, scenario):
        sequential = enrich(scenario)
        threaded = enrich(scenario, n_workers=4, batch_size=1)
        assert report_fingerprint(sequential) == report_fingerprint(threaded)

    def test_batch_size_does_not_change_the_report(self, scenario):
        small = enrich(scenario, n_workers=2, batch_size=1)
        large = enrich(scenario, n_workers=2, batch_size=64)
        assert report_fingerprint(small) == report_fingerprint(large)

    def test_prebuilt_index_reuse_matches(self, scenario):
        baseline = enrich(scenario)
        index = scenario.corpus.index()
        config = EnrichmentConfig(n_candidates=6, min_contexts=3)
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        reused = enricher.enrich(scenario.corpus, index=index)
        again = enricher.enrich(scenario.corpus, index=index)
        assert report_fingerprint(baseline) == report_fingerprint(reused)
        assert report_fingerprint(baseline) == report_fingerprint(again)


class TestStageUnits:
    @pytest.fixture(scope="class")
    def enricher_and_ctx(self, scenario):
        config = EnrichmentConfig(n_candidates=6, min_contexts=3)
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        ctx = PipelineContext(
            corpus=scenario.corpus,
            ontology=scenario.ontology,
            config=config,
            index=scenario.corpus.index(),
        )
        return enricher, ctx

    def test_stage_order_and_names(self, enricher_and_ctx):
        enricher, __ = enricher_and_ctx
        stages = enricher.stages()
        assert [type(s) for s in stages] == [
            ExtractStage, DetectStage, InduceStage, LinkStage,
        ]
        assert [s.name for s in stages] == [
            "extract", "detect", "induce", "link",
        ]

    def test_extract_stage_selects_candidates(self, enricher_and_ctx):
        enricher, ctx = enricher_and_ctx
        ExtractStage(enricher._extractor).run(ctx)
        assert 1 <= len(ctx.work) <= ctx.config.n_candidates
        assert len(ctx.ranked) >= len(ctx.work)
        for item in ctx.work:
            assert not ctx.ontology.has_term(item.candidate.term)
            assert item.report in ctx.report.terms
            assert item.contexts is None  # detect not yet run

    def test_detect_stage_materialises_contexts(self, enricher_and_ctx):
        enricher, ctx = enricher_and_ctx
        DetectStage(
            enricher._detector,
            enricher._feature_extractor,
            trained=False,
        ).run(ctx)
        for item in ctx.work:
            assert item.report.n_contexts >= 0
            if item.active:
                assert item.contexts
                assert len(item.contexts) >= ctx.config.min_contexts
                assert len(item.contexts) <= ctx.config.max_contexts_per_term
                assert item.report.polysemic is False  # untrained fallback
            else:
                assert "contexts" in item.report.skipped_reason

    def test_induce_stage_fills_senses(self, enricher_and_ctx):
        __, ctx = enricher_and_ctx
        InduceStage(OntologyEnricher(
            ctx.ontology, config=ctx.config,
        )._inducer).run(ctx)
        for item in ctx.work:
            if item.active:
                assert item.report.senses is not None
                assert item.report.n_senses >= 1

    def test_link_stage_fills_propositions(self, enricher_and_ctx):
        __, ctx = enricher_and_ctx
        LinkStage().run(ctx)
        for item in ctx.work:
            if item.active:
                assert item.report.propositions


class TestTimingsAndConfig:
    def test_timings_cover_every_stage(self, scenario):
        report = enrich(scenario)
        assert set(report.timings) == {
            "index", "train", "extract", "detect", "induce", "link",
        }
        for seconds in report.timings.values():
            assert seconds >= 0.0

    def test_max_contexts_per_term_caps_contexts(self, scenario):
        report = enrich(scenario, max_contexts_per_term=3)
        for t in report.terms:
            if t.senses is not None:
                covered = {
                    i for s in t.senses.senses for i in s.context_indices
                }
                assert len(covered) <= 3

    def test_doc_frequency_counted_over_kept_contexts(self, scenario):
        # Parity with the legacy loop: when the cap binds, doc_frequency
        # is computed over the stride-subsampled occurrences, not all.
        config = EnrichmentConfig(
            n_candidates=6, min_contexts=3, max_contexts_per_term=3
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        ctx = PipelineContext(
            corpus=scenario.corpus,
            ontology=scenario.ontology,
            config=config,
            index=scenario.corpus.index(),
        )
        for stage in enricher.stages()[:2]:  # extract + detect
            stage.run(ctx)
        capped = [
            item for item in ctx.work
            if item.active and item.report.n_contexts > 3
        ]
        assert capped, "scenario produced no candidate above the cap"
        for item in capped:
            occurrences = ctx.index.contexts_for_term(
                item.candidate.term, window=config.context_window
            )
            step = len(occurrences) / 3
            kept = [occurrences[int(i * step)] for i in range(3)]
            assert item.doc_frequency == len({c.doc_id for c in kept})

    def test_max_contexts_below_min_rejected(self):
        with pytest.raises(ValidationError, match="max_contexts_per_term"):
            EnrichmentConfig(min_contexts=5, max_contexts_per_term=4)

    @pytest.mark.parametrize(
        "kwargs",
        [{"batch_size": 0}, {"n_workers": 0}],
    )
    def test_invalid_batching_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            EnrichmentConfig(**kwargs)


class TestWorkerBackends:
    def test_process_pool_matches_sequential(self, scenario):
        sequential = enrich(scenario)
        process = enrich(
            scenario, n_workers=2, worker_backend="process", batch_size=2
        )
        assert report_fingerprint(sequential) == report_fingerprint(process)

    def test_process_pool_matches_threads(self, scenario):
        threaded = enrich(scenario, n_workers=2, worker_backend="thread")
        process = enrich(scenario, n_workers=2, worker_backend="process")
        assert report_fingerprint(threaded) == report_fingerprint(process)

    def test_invalid_worker_backend_rejected(self):
        with pytest.raises(ValidationError, match="worker_backend"):
            EnrichmentConfig(worker_backend="greenlet")


class TestCommunityBackendKnob:
    def test_louvain_and_greedy_agree_on_labels(self, scenario):
        louvain = enrich(scenario)
        greedy = enrich(scenario, community_backend="greedy")
        assert [t.polysemic for t in louvain.terms] == [
            t.polysemic for t in greedy.terms
        ]

    def test_invalid_community_backend_rejected(self):
        with pytest.raises(ValidationError, match="community_backend"):
            EnrichmentConfig(community_backend="metis")


class TestFeatureCacheWiring:
    def test_report_exposes_cache_counters(self, scenario):
        report = enrich(scenario)
        assert set(report.cache) == {
            "hits", "misses", "disk_hits", "evictions", "entries",
            "store_bytes", "remote_hits", "remote_errors",
        }
        assert report.cache["misses"] > 0
        assert report.cache["entries"] > 0
        # In-memory backend: nothing is ever served from (or evicted
        # off) disk or a cache service, but the resident vectors have a
        # measurable size.
        assert report.cache["disk_hits"] == 0
        assert report.cache["evictions"] == 0
        assert report.cache["remote_hits"] == 0
        assert report.cache["remote_errors"] == 0
        assert report.cache["store_bytes"] > 0

    def test_cache_disabled_reports_empty(self, scenario):
        report = enrich(scenario, feature_cache=False)
        assert report.cache == {}

    def test_repeated_enrich_hits_and_is_identical(self, scenario):
        config = EnrichmentConfig(
            n_candidates=6, min_contexts=3
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        first = enricher.enrich(scenario.corpus)
        second = enricher.enrich(scenario.corpus)
        assert second.cache["hits"] > first.cache["hits"]
        assert report_fingerprint(first) == report_fingerprint(second)

    def test_cache_does_not_change_the_report(self, scenario):
        cached = enrich(scenario)
        uncached = enrich(scenario, feature_cache=False)
        assert report_fingerprint(cached) == report_fingerprint(uncached)


class TestIndexShardsKnob:
    def test_sharded_index_does_not_change_the_report(self, scenario):
        baseline = enrich(scenario)
        sharded = enrich(scenario, index_shards=3)
        assert report_fingerprint(baseline) == report_fingerprint(sharded)

    def test_enrich_builds_and_caches_sharded_index(self):
        scenario = make_enrichment_scenario(
            seed=3, n_concepts=12, docs_per_concept=3,
        )
        config = EnrichmentConfig(
            n_candidates=3, min_contexts=2, index_shards=2
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        enricher.enrich(scenario.corpus)
        index = scenario.corpus.index()
        assert isinstance(index, ShardedCorpusIndex)
        assert index.n_shards == 2

    def test_invalid_index_shards_rejected(self):
        with pytest.raises(ValidationError, match="index_shards"):
            EnrichmentConfig(index_shards=0)


class TestTrainingFallback:
    """Step II training failures: degrade loudly on bad data only."""

    def test_successful_training_is_recorded(self, scenario):
        report = enrich(scenario)
        assert report.detector_trained is True
        assert report.warnings == []

    def test_degenerate_training_falls_back_with_warning(self):
        # No ontology term occurs in the corpus, so the Step II dataset
        # build fails with CorpusError: the workflow must survive,
        # record the fallback, and treat candidates as monosemous.
        scenario = make_enrichment_scenario(
            seed=5, n_concepts=12, docs_per_concept=3,
        )
        ontology = Ontology()
        ontology.add_concept(Concept("C1", "zzz qqq"))
        config = EnrichmentConfig(n_candidates=3, min_contexts=2)
        enricher = OntologyEnricher(
            ontology, config=config, pos_lexicon=scenario.pos_lexicon
        )
        report = enricher.enrich(scenario.corpus)
        assert report.detector_trained is False
        assert len(report.warnings) == 1
        assert "polysemy detector not trained" in report.warnings[0]
        for t in report.terms:
            assert t.polysemic in (False, None)

    def test_programming_errors_propagate(self, scenario):
        # Regression: a bare `except Exception` used to swallow even
        # TypeError from the training path.
        config = EnrichmentConfig(n_candidates=3, min_contexts=3)
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )

        def boom(corpus, *, index=None):
            raise TypeError("boom")

        enricher.train_polysemy_detector = boom
        with pytest.raises(TypeError, match="boom"):
            enricher.enrich(scenario.corpus)


class _StubExtractor:
    """Deterministic ranking of ``n_total`` synthetic terms."""

    def __init__(self, n_total: int = 30) -> None:
        self.n_total = n_total

    def extract(self, corpus, *, top_k=None, index=None):
        count = self.n_total if top_k is None else min(top_k, self.n_total)
        return [
            RankedTerm(
                term=f"term {i}",
                tokens=("term", str(i)),
                score=float(self.n_total - i),
                frequency=1,
                rank=i + 1,
            )
            for i in range(count)
        ]


class _StubOntology:
    def __init__(self, known) -> None:
        self._known = set(known)

    def has_term(self, term: str) -> bool:
        return term in self._known


class TestExtractBatchFilling:
    """Regression: a fixed 3x over-fetch under-filled the batch when
    skip_known_terms filtered more than 2/3 of the ranking."""

    def make_ctx(self, known_count: int, n_candidates: int = 5):
        known = {f"term {i}" for i in range(known_count)}
        config = EnrichmentConfig(n_candidates=n_candidates, min_contexts=1)
        ctx = PipelineContext(
            corpus=None,
            ontology=_StubOntology(known),
            config=config,
            index=None,
        )
        return _StubExtractor(n_total=30), ctx

    def test_heavy_filtering_still_fills_the_batch(self):
        # 14 of the top 15 (the old 3x5 window) are known terms: the old
        # code selected a single candidate and stopped.
        extractor, ctx = self.make_ctx(known_count=14)
        ExtractStage(extractor).run(ctx)
        assert [item.candidate.term for item in ctx.work] == [
            f"term {i}" for i in range(14, 19)
        ]

    def test_exhausted_candidates_stop_cleanly(self):
        extractor, ctx = self.make_ctx(known_count=28)  # only 2 unknown
        ExtractStage(extractor).run(ctx)
        assert [item.candidate.term for item in ctx.work] == [
            "term 28", "term 29",
        ]

    def test_overfetch_window_preserved_when_batch_fills_early(self):
        extractor, ctx = self.make_ctx(known_count=0)
        ExtractStage(extractor).run(ctx)
        assert len(ctx.work) == 5
        assert len(ctx.ranked) == 15  # the historical 3x window

    def test_ranked_covers_the_consumed_prefix_when_filtering_deep(self):
        extractor, ctx = self.make_ctx(known_count=14)
        ExtractStage(extractor).run(ctx)
        assert len(ctx.ranked) == 19  # every candidate scanned


class TestSkippedCandidateFeatureInvariant:
    def test_cache_prefilled_features_cleared_on_skip(self):
        # Regression: a cache-prefilled vector used to survive on work
        # items skipped during materialisation, violating the invariant
        # contexts is None => features is None.
        corpus = Corpus([Document("d", [["rare", "pair", "x", "y"]])])
        index = corpus.index()
        config = EnrichmentConfig(n_candidates=1, min_contexts=4)
        enricher = OntologyEnricher(Ontology(), config=config)
        cache = FeatureCache()
        config_fp = (
            f"{enricher._feature_extractor.fingerprint()};"
            f"detect_window={config.context_window};"
            f"detect_cap={config.max_contexts_per_term}"
        )
        cache.store(
            FeatureCache.key(index.fingerprint(), "rare pair", config_fp),
            np.zeros(3),
        )
        item = CandidateWork(
            candidate=RankedTerm(
                term="rare pair", tokens=("rare", "pair"),
                score=1.0, frequency=1, rank=1,
            ),
            report=TermReport(
                term="rare pair", extraction_score=1.0, extraction_rank=1
            ),
        )
        ctx = PipelineContext(
            corpus=corpus,
            ontology=Ontology(),
            config=config,
            index=index,
            work=[item],
        )
        DetectStage(
            enricher._detector,
            enricher._feature_extractor,
            trained=True,
            cache=cache,
        ).run(ctx)
        assert item.report.skipped_reason is not None
        assert item.contexts is None
        assert item.features is None
