"""Tests for repro.ontology.model."""

import pytest

from repro.errors import OntologyError
from repro.ontology.model import Concept, Ontology, normalize_term


def small_ontology() -> Ontology:
    onto = Ontology("test")
    onto.add_concept(Concept("R", "eye diseases"))
    onto.add_concept(Concept("A", "corneal diseases"), fathers=["R"])
    onto.add_concept(Concept("B", "eye injuries"), fathers=["R"])
    onto.add_concept(
        Concept("C", "corneal injuries", synonyms=["corneal injury"]),
        fathers=["A", "B"],
    )
    return onto


class TestNormalizeTerm:
    def test_lowercases(self):
        assert normalize_term("Corneal Injuries") == "corneal injuries"

    def test_collapses_whitespace(self):
        assert normalize_term("  corneal   injuries ") == "corneal injuries"


class TestConcept:
    def test_all_terms_order_and_dedup(self):
        concept = Concept("X", "Corneal Injuries", synonyms=["corneal injuries", "corneal damage"])
        assert concept.all_terms() == ["corneal injuries", "corneal damage"]


class TestOntologyStructure:
    def test_add_and_lookup(self):
        onto = small_ontology()
        assert len(onto) == 4
        assert onto.concept("C").preferred_term == "corneal injuries"
        assert "C" in onto and "Z" not in onto

    def test_duplicate_id_raises(self):
        onto = small_ontology()
        with pytest.raises(OntologyError, match="duplicate"):
            onto.add_concept(Concept("A", "anything"))

    def test_unknown_concept_raises(self):
        with pytest.raises(OntologyError, match="unknown concept"):
            small_ontology().concept("missing")

    def test_fathers_and_sons(self):
        onto = small_ontology()
        assert onto.fathers("C") == ["A", "B"]
        assert onto.sons("R") == ["A", "B"]
        assert onto.fathers("R") == []

    def test_roots(self):
        assert small_ontology().roots() == ["R"]

    def test_ancestors(self):
        assert small_ontology().ancestors("C") == {"A", "B", "R"}

    def test_depth(self):
        onto = small_ontology()
        assert onto.depth("R") == 0
        assert onto.depth("A") == 1
        assert onto.depth("C") == 2

    def test_edge_to_unknown_raises(self):
        onto = small_ontology()
        with pytest.raises(OntologyError):
            onto.add_edge("R", "nope")
        with pytest.raises(OntologyError):
            onto.add_edge("nope", "R")

    def test_self_edge_raises(self):
        with pytest.raises(OntologyError, match="self-edge"):
            small_ontology().add_edge("A", "A")

    def test_cycle_rejected(self):
        onto = small_ontology()
        with pytest.raises(OntologyError, match="cycle"):
            onto.add_edge("C", "R")

    def test_validate_passes_on_good_ontology(self):
        small_ontology().validate()

    def test_position_candidates_expand_with_fathers_sons(self):
        onto = small_ontology()
        expanded = onto.position_candidates(["A"])
        assert expanded == {"A", "R", "C"}

    def test_iteration_yields_concepts(self):
        ids = [c.concept_id for c in small_ontology()]
        assert ids == ["R", "A", "B", "C"]


class TestTermIndex:
    def test_concepts_for_term(self):
        onto = small_ontology()
        assert onto.concepts_for_term("corneal injuries") == ["C"]
        assert onto.concepts_for_term("Corneal  Injury") == ["C"]
        assert onto.concepts_for_term("unknown term") == []

    def test_has_term(self):
        onto = small_ontology()
        assert onto.has_term("eye diseases")
        assert not onto.has_term("nope")

    def test_polysemy_via_shared_synonym(self):
        onto = small_ontology()
        onto.add_synonym("A", "shared name")
        onto.add_synonym("B", "shared name")
        assert onto.is_polysemic("shared name")
        assert onto.sense_count("shared name") == 2
        assert onto.polysemic_terms() == ["shared name"]

    def test_add_synonym_idempotent(self):
        onto = small_ontology()
        onto.add_synonym("A", "alias")
        onto.add_synonym("A", "Alias")
        assert onto.concept("A").synonyms.count("alias") == 1

    def test_sense_count_unknown_is_zero(self):
        assert small_ontology().sense_count("zzz") == 0

    def test_remove_term_drops_from_index_and_synonyms(self):
        onto = small_ontology()
        onto.remove_term("corneal injury")
        assert not onto.has_term("corneal injury")
        assert "corneal injury" not in onto.concept("C").synonyms
        # concept itself survives with its preferred term
        assert onto.has_term("corneal injuries")

    def test_remove_preferred_term_keeps_concept(self):
        onto = small_ontology()
        onto.remove_term("corneal injuries")
        assert not onto.has_term("corneal injuries")
        assert "C" in onto

    def test_terms_sorted_unique(self):
        terms = small_ontology().terms()
        assert terms == sorted(terms)
        assert len(terms) == len(set(terms))
