"""Tests for repro.text.stopwords and repro.text.stemming."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.text.stemming import PorterStemmer, stem
from repro.text.stopwords import SUPPORTED_LANGUAGES, is_stopword, stopwords_for


class TestStopwords:
    @pytest.mark.parametrize("language", SUPPORTED_LANGUAGES)
    def test_nonempty_and_lowercase(self, language):
        words = stopwords_for(language)
        assert len(words) > 50
        assert all(w == w.lower() for w in words)

    def test_english_basics(self):
        en = stopwords_for("en")
        for word in ("the", "of", "and", "is"):
            assert word in en

    def test_french_basics(self):
        fr = stopwords_for("fr")
        for word in ("le", "la", "de", "et"):
            assert word in fr

    def test_spanish_basics(self):
        es = stopwords_for("es")
        for word in ("el", "de", "la", "que"):
            assert word in es

    def test_unknown_language_raises(self):
        with pytest.raises(ValidationError):
            stopwords_for("de")

    def test_is_stopword_case_insensitive(self):
        assert is_stopword("The", "en")
        assert not is_stopword("cornea", "en")

    def test_content_words_not_stopwords(self):
        en = stopwords_for("en")
        for word in ("cornea", "injury", "disease", "protein"):
            assert word not in en


class TestPorterStemmer:
    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adoption", "adopt"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_porter_reference_vectors(self, word, expected):
        assert PorterStemmer().stem(word) == expected

    def test_short_words_untouched(self):
        assert stem("is") == "is"
        assert stem("at") == "at"

    def test_biomedical_variants_conflate(self):
        assert stem("injuries") == stem("injury")
        assert stem("diseases") == stem("disease")

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=30))
    def test_idempotent_on_output_length(self, word):
        # Stemming never lengthens a word and always returns lowercase.
        out = stem(word)
        assert len(out) <= len(word) + 1  # +1 for the rare "+e" restores
        assert out == out.lower()


class TestLightStemmers:
    def test_french_plural(self):
        assert stem("maladies", "fr") == stem("maladie", "fr")

    def test_french_derivation(self):
        assert stem("traitements", "fr") == stem("traitement", "fr")

    def test_spanish_plural(self):
        assert stem("enfermedades", "es") == stem("enfermedad", "es")

    def test_spanish_short_word_untouched(self):
        assert stem("ojo", "es") == "ojo"

    def test_unknown_language_raises(self):
        with pytest.raises(ValidationError):
            stem("word", "pt")
