"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def scenario_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("scenario")
    code = main(
        [
            "generate",
            "--output", str(out),
            "--concepts", "25",
            "--docs-per-concept", "3",
            "--seed", "3",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "x"])
        assert args.concepts == 60
        assert args.seed == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_both_files(self, scenario_dir):
        ontology_path = scenario_dir / "ontology.json"
        corpus_path = scenario_dir / "corpus.jsonl"
        assert ontology_path.exists() and corpus_path.exists()
        payload = json.loads(ontology_path.read_text())
        assert len(payload["concepts"]) == 25
        assert sum(1 for __ in corpus_path.open()) == 75

    def test_output_dir_created(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        code = main(
            ["generate", "--output", str(target), "--concepts", "5",
             "--docs-per-concept", "1"]
        )
        assert code == 0
        assert (target / "ontology.json").exists()


class TestLinkAndEvaluate:
    def test_link_prints_table(self, scenario_dir, capsys):
        payload = json.loads((scenario_dir / "ontology.json").read_text())
        term = payload["concepts"][5]["preferred_term"]
        code = main(
            [
                "link",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--term", term,
                "--top-k", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Propositions" in out
        assert "cosine" in out

    def test_evaluate_runs(self, scenario_dir, capsys):
        code = main(
            [
                "evaluate",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--max-terms", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Top 10" in out

    def test_evaluate_empty_window_fails(self, scenario_dir, capsys):
        code = main(
            [
                "evaluate",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--start-year", "2050",
                "--end-year", "2060",
            ]
        )
        assert code == 1


class TestEnrich:
    def test_enrich_prints_report(self, scenario_dir, capsys):
        code = main(
            [
                "enrich",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--candidates", "3",
                "--top-k", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Enrichment report" in out

    def test_enrich_with_index_shards_matches_default(
        self, scenario_dir, capsys
    ):
        argv = [
            "enrich",
            "--ontology", str(scenario_dir / "ontology.json"),
            "--corpus", str(scenario_dir / "corpus.jsonl"),
            "--candidates", "3",
            "--top-k", "3",
        ]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        assert main(argv + ["--index-shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == baseline

    def test_index_shards_default(self):
        args = build_parser().parse_args(
            ["enrich", "--ontology", "o", "--corpus", "c"]
        )
        assert args.index_shards == 1

    def test_cache_flags_default_off(self):
        args = build_parser().parse_args(
            ["enrich", "--ontology", "o", "--corpus", "c"]
        )
        assert args.cache_dir is None
        assert args.cache_max_bytes is None

    def test_enrich_with_cache_dir_warm_second_invocation(
        self, scenario_dir, tmp_path, capsys
    ):
        cache_dir = tmp_path / "feature-cache"
        argv = [
            "enrich",
            "--ontology", str(scenario_dir / "ontology.json"),
            "--corpus", str(scenario_dir / "corpus.jsonl"),
            "--candidates", "3",
            "--top-k", "3",
            "--cache-dir", str(cache_dir),
            "--timings",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert cache_dir.is_dir()
        # A second CLI invocation is a fresh process in spirit: a new
        # enricher warm-started purely from the on-disk store.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "disk_hits" in warm
        report_of = lambda out: out.split("Stage timings")[0]  # noqa: E731
        assert report_of(warm) == report_of(cold)


class TestServeAndCacheInfoParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--cache-dir", "x"])
        assert args.host == "127.0.0.1"
        assert args.port == 8750
        assert args.cache_max_bytes is None
        assert args.scenario == []
        assert args.job_workers == 1

    def test_serve_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_scenarios_are_repeatable(self):
        args = build_parser().parse_args(
            ["serve", "--cache-dir", "x",
             "--scenario", "a=/tmp/a", "--scenario", "b=/tmp/b"]
        )
        assert args.scenario == ["a=/tmp/a", "b=/tmp/b"]

    def test_bad_scenario_spec_rejected(self):
        from repro.cli import _parse_scenario_specs

        with pytest.raises(SystemExit, match="NAME=DIR"):
            _parse_scenario_specs(["no-equals-sign"])
        corpora = _parse_scenario_specs(["demo=/data/demo"])
        ontology, corpus = corpora["demo"]
        assert ontology.name == "ontology.json"
        assert corpus.name == "corpus.jsonl"

    def test_enrich_cache_url_flags(self):
        args = build_parser().parse_args(
            ["enrich", "--ontology", "o", "--corpus", "c",
             "--cache-url", "http://h:1", "--cache-timeout", "0.5"]
        )
        assert args.cache_url == "http://h:1"
        assert args.cache_timeout == 0.5


class TestCacheInfo:
    def test_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["cache-info"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(
            ["cache-info", "--cache-dir", str(tmp_path),
             "--cache-url", "http://h:1"]
        ) == 2

    def test_prints_disk_layout(self, tmp_path, capsys):
        import numpy as np

        from repro.polysemy.cache_store import DiskCacheStore

        store = DiskCacheStore(tmp_path)
        store.put(("fp-a", "term one", "cfg"), np.arange(4.0))
        store.put(("fp-b", "term two", "cfg"), np.arange(6.0))
        assert main(["cache-info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "generations" in out.lower()
        assert " 2" in out  # two entries across two generations

    def test_missing_cache_dir_is_an_error_not_a_mkdir(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "typo" / "cache"
        assert main(["cache-info", "--cache-dir", str(missing)]) == 1
        assert "no cache store" in capsys.readouterr().err
        # Inspection must not have created the directory it inspected.
        assert not missing.exists()

    def test_unreachable_service_reports_error(self, capsys):
        code = main(["cache-info", "--cache-url", "http://127.0.0.1:1"])
        assert code == 1
        assert "unreachable" in capsys.readouterr().err

    def test_reads_a_live_service(self, tmp_path, capsys):
        import numpy as np

        from repro.polysemy.cache_store import DiskCacheStore
        from repro.service.client import RemoteCacheStore
        from repro.service.server import CacheServiceServer

        server = CacheServiceServer(DiskCacheStore(tmp_path), port=0)
        server.start()
        try:
            RemoteCacheStore(server.url).put(
                ("fp", "served term", "cfg"), np.arange(3.0)
            )
            assert main(["cache-info", "--cache-url", server.url]) == 0
            out = capsys.readouterr().out
            assert server.url in out
        finally:
            server.stop()


class TestEnrichThroughService:
    def test_cache_url_warm_second_invocation(
        self, scenario_dir, tmp_path, capsys
    ):
        from repro.polysemy.cache_store import DiskCacheStore
        from repro.service.server import CacheServiceServer

        server = CacheServiceServer(
            DiskCacheStore(tmp_path / "served"), port=0
        )
        server.start()
        try:
            argv = [
                "enrich",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--candidates", "3",
                "--top-k", "3",
                "--cache-url", server.url,
                "--timings",
            ]
            assert main(argv) == 0
            cold = capsys.readouterr().out
            assert main(argv) == 0
            warm = capsys.readouterr().out
        finally:
            server.stop()
        assert "remote_hits" in warm
        report_of = lambda out: out.split("Stage timings")[0]  # noqa: E731
        assert report_of(warm) == report_of(cold)
