"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def scenario_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("scenario")
    code = main(
        [
            "generate",
            "--output", str(out),
            "--concepts", "25",
            "--docs-per-concept", "3",
            "--seed", "3",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "x"])
        assert args.concepts == 60
        assert args.seed == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_both_files(self, scenario_dir):
        ontology_path = scenario_dir / "ontology.json"
        corpus_path = scenario_dir / "corpus.jsonl"
        assert ontology_path.exists() and corpus_path.exists()
        payload = json.loads(ontology_path.read_text())
        assert len(payload["concepts"]) == 25
        assert sum(1 for __ in corpus_path.open()) == 75

    def test_output_dir_created(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        code = main(
            ["generate", "--output", str(target), "--concepts", "5",
             "--docs-per-concept", "1"]
        )
        assert code == 0
        assert (target / "ontology.json").exists()


class TestLinkAndEvaluate:
    def test_link_prints_table(self, scenario_dir, capsys):
        payload = json.loads((scenario_dir / "ontology.json").read_text())
        term = payload["concepts"][5]["preferred_term"]
        code = main(
            [
                "link",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--term", term,
                "--top-k", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Propositions" in out
        assert "cosine" in out

    def test_evaluate_runs(self, scenario_dir, capsys):
        code = main(
            [
                "evaluate",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--max-terms", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Top 10" in out

    def test_evaluate_empty_window_fails(self, scenario_dir, capsys):
        code = main(
            [
                "evaluate",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--start-year", "2050",
                "--end-year", "2060",
            ]
        )
        assert code == 1


class TestEnrich:
    def test_enrich_prints_report(self, scenario_dir, capsys):
        code = main(
            [
                "enrich",
                "--ontology", str(scenario_dir / "ontology.json"),
                "--corpus", str(scenario_dir / "corpus.jsonl"),
                "--candidates", "3",
                "--top-k", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Enrichment report" in out

    def test_enrich_with_index_shards_matches_default(
        self, scenario_dir, capsys
    ):
        argv = [
            "enrich",
            "--ontology", str(scenario_dir / "ontology.json"),
            "--corpus", str(scenario_dir / "corpus.jsonl"),
            "--candidates", "3",
            "--top-k", "3",
        ]
        assert main(argv) == 0
        baseline = capsys.readouterr().out
        assert main(argv + ["--index-shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == baseline

    def test_index_shards_default(self):
        args = build_parser().parse_args(
            ["enrich", "--ontology", "o", "--corpus", "c"]
        )
        assert args.index_shards == 1

    def test_cache_flags_default_off(self):
        args = build_parser().parse_args(
            ["enrich", "--ontology", "o", "--corpus", "c"]
        )
        assert args.cache_dir is None
        assert args.cache_max_bytes is None

    def test_enrich_with_cache_dir_warm_second_invocation(
        self, scenario_dir, tmp_path, capsys
    ):
        cache_dir = tmp_path / "feature-cache"
        argv = [
            "enrich",
            "--ontology", str(scenario_dir / "ontology.json"),
            "--corpus", str(scenario_dir / "corpus.jsonl"),
            "--candidates", "3",
            "--top-k", "3",
            "--cache-dir", str(cache_dir),
            "--timings",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert cache_dir.is_dir()
        # A second CLI invocation is a fresh process in spirit: a new
        # enricher warm-started purely from the on-disk store.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "disk_hits" in warm
        report_of = lambda out: out.split("Stage timings")[0]  # noqa: E731
        assert report_of(warm) == report_of(cold)
