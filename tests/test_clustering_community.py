"""The community-detection subsystem: CSR graphs, Louvain, backends."""

import networkx as nx
import numpy as np
import pytest

from repro.clustering.community import (
    COMMUNITY_BACKEND_NAMES,
    COMMUNITY_BACKENDS,
    GreedyModularityBackend,
    LouvainBackend,
    get_community_backend,
)
from repro.clustering.louvain import (
    CSRGraph,
    louvain_labels,
    modularity_from_labels,
)
from repro.errors import ClusteringError


def random_weighted_graph(seed, n=None, p=None):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 60)) if n is None else n
    p = float(rng.uniform(0.08, 0.4)) if p is None else p
    graph = nx.gnp_random_graph(n, p, seed=int(rng.integers(10**6)))
    for u, v in graph.edges():
        graph[u][v]["weight"] = float(rng.integers(1, 6))
    return graph


def two_cliques_graph(size=6, bridge_weight=0.5):
    """Two dense cliques joined by one weak edge — unambiguous communities."""
    graph = nx.Graph()
    left = [f"l{i}" for i in range(size)]
    right = [f"r{i}" for i in range(size)]
    for group in (left, right):
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                graph.add_edge(u, v, weight=2.0)
    graph.add_edge(left[0], right[0], weight=bridge_weight)
    return graph


class TestCSRGraph:
    def test_from_networkx_matches_weighted_degree(self):
        graph = random_weighted_graph(seed=1)
        csr = CSRGraph.from_networkx(graph)
        nx_degrees = np.array(
            [d for __, d in graph.degree(weight="weight")], dtype=np.float64
        )
        assert csr.n_nodes == graph.number_of_nodes()
        np.testing.assert_allclose(csr.strengths(), nx_degrees)
        assert csr.total_weight() == pytest.approx(
            2.0 * sum(w for __, __, w in graph.edges(data="weight"))
        )

    def test_self_loop_follows_degree_convention(self):
        graph = nx.Graph()
        graph.add_edge(0, 0, weight=3.0)
        graph.add_edge(0, 1, weight=1.0)
        csr = CSRGraph.from_networkx(graph)
        nx_degrees = np.array(
            [d for __, d in graph.degree(weight="weight")], dtype=np.float64
        )
        np.testing.assert_allclose(csr.strengths(), nx_degrees)

    def test_misaligned_edge_arrays_rejected(self):
        with pytest.raises(ClusteringError):
            CSRGraph.from_edges(
                3,
                np.array([0, 1]),
                np.array([1]),
                np.array([1.0]),
            )


class TestLouvainLabels:
    def test_empty_graph(self):
        csr = CSRGraph.from_edges(0, np.array([]), np.array([]), np.array([]))
        assert louvain_labels(csr).shape == (0,)

    def test_edgeless_graph_is_singletons(self):
        csr = CSRGraph.from_edges(4, np.array([]), np.array([]), np.array([]))
        np.testing.assert_array_equal(louvain_labels(csr), np.arange(4))

    def test_labels_are_contiguous_and_cover_all_nodes(self):
        for seed in range(5):
            graph = random_weighted_graph(seed=seed)
            csr = CSRGraph.from_networkx(graph)
            labels = louvain_labels(csr, seed=seed)
            assert labels.shape == (graph.number_of_nodes(),)
            observed = sorted(set(int(v) for v in labels))
            assert observed == list(range(int(labels.max()) + 1))

    def test_deterministic_under_fixed_seed(self):
        for seed in range(5):
            graph = random_weighted_graph(seed=100 + seed)
            csr = CSRGraph.from_networkx(graph)
            first = louvain_labels(csr, seed=3)
            second = louvain_labels(csr, seed=3)
            np.testing.assert_array_equal(first, second)

    def test_splits_two_cliques(self):
        graph = two_cliques_graph()
        csr = CSRGraph.from_networkx(graph)
        labels = louvain_labels(csr, seed=0)
        nodes = list(graph.nodes())
        left = {labels[i] for i, n in enumerate(nodes) if n.startswith("l")}
        right = {labels[i] for i, n in enumerate(nodes) if n.startswith("r")}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_quality_parity_with_greedy(self):
        # Louvain must match greedy modularity within tolerance on
        # random graphs (it usually wins; it must never collapse).
        for seed in range(8):
            graph = random_weighted_graph(seed=200 + seed)
            if graph.number_of_edges() == 0:
                continue
            csr = CSRGraph.from_networkx(graph)
            labels = louvain_labels(csr, seed=0)
            q_louvain = modularity_from_labels(csr, labels)
            greedy = nx.algorithms.community.greedy_modularity_communities(
                graph, weight="weight"
            )
            q_greedy = nx.algorithms.community.modularity(
                graph, greedy, weight="weight"
            )
            assert q_louvain >= q_greedy - 0.05, (seed, q_louvain, q_greedy)


class TestModularityFromLabels:
    def test_matches_networkx_on_random_partitions(self):
        rng = np.random.default_rng(7)
        for seed in range(6):
            graph = random_weighted_graph(seed=300 + seed)
            if graph.number_of_edges() == 0:
                continue
            csr = CSRGraph.from_networkx(graph)
            n = graph.number_of_nodes()
            labels = rng.integers(0, max(2, n // 3), size=n)
            nodes = list(graph.nodes())
            groups = {}
            for node, label in zip(nodes, labels):
                groups.setdefault(int(label), set()).add(node)
            expected = nx.algorithms.community.modularity(
                graph, list(groups.values()), weight="weight"
            )
            measured = modularity_from_labels(
                csr, np.asarray(labels, dtype=np.int64)
            )
            assert measured == pytest.approx(expected, abs=1e-12)

    def test_rejects_misaligned_labels(self):
        csr = CSRGraph.from_edges(
            3, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 1.0])
        )
        with pytest.raises(ClusteringError):
            modularity_from_labels(csr, np.array([0, 1]))


class TestBackends:
    def test_registry_names(self):
        assert set(COMMUNITY_BACKEND_NAMES) == set(COMMUNITY_BACKENDS)
        assert COMMUNITY_BACKEND_NAMES[0] == "louvain"

    def test_get_backend_resolves_names_and_instances(self):
        assert get_community_backend("louvain").name == "louvain"
        assert get_community_backend("greedy").name == "greedy"
        backend = LouvainBackend(resolution=1.5)
        assert get_community_backend(backend) is backend

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(ClusteringError):
            get_community_backend("metis")
        with pytest.raises(ClusteringError):
            get_community_backend(42)

    @pytest.mark.parametrize("name", COMMUNITY_BACKEND_NAMES)
    def test_communities_partition_the_nodes(self, name):
        graph = random_weighted_graph(seed=11)
        communities = get_community_backend(name).communities(graph, seed=0)
        seen = set()
        for community in communities:
            assert not (community & seen)
            seen |= community
        assert seen == set(graph.nodes())

    @pytest.mark.parametrize("name", COMMUNITY_BACKEND_NAMES)
    def test_communities_sorted_largest_first(self, name):
        graph = two_cliques_graph(size=5)
        graph.add_edge("x0", "x1", weight=2.0)  # a third, tiny community
        communities = get_community_backend(name).communities(graph, seed=0)
        sizes = [len(c) for c in communities]
        assert sizes == sorted(sizes, reverse=True)

    @pytest.mark.parametrize("name", COMMUNITY_BACKEND_NAMES)
    def test_empty_graph_yields_no_communities(self, name):
        assert get_community_backend(name).communities(nx.Graph(), seed=0) == []

    def test_backends_agree_on_clear_structure(self):
        graph = two_cliques_graph()
        partitions = []
        for name in COMMUNITY_BACKEND_NAMES:
            communities = get_community_backend(name).communities(
                graph, seed=0
            )
            partitions.append(sorted(tuple(sorted(c)) for c in communities))
        assert partitions[0] == partitions[1]

    def test_louvain_csr_fast_path_matches_communities(self):
        graph = random_weighted_graph(seed=21)
        backend = LouvainBackend()
        via_nx = backend.communities(graph, seed=4)
        csr = CSRGraph.from_networkx(graph)
        labels = backend.labels_from_csr(csr, seed=4)
        nodes = list(graph.nodes())
        groups = {}
        for node, label in zip(nodes, labels):
            groups.setdefault(int(label), set()).add(node)
        assert sorted(map(sorted, groups.values())) == sorted(
            map(sorted, via_nx)
        )

    def test_greedy_backend_matches_networkx(self):
        graph = random_weighted_graph(seed=31)
        communities = GreedyModularityBackend().communities(graph, seed=0)
        reference = [
            set(c)
            for c in nx.algorithms.community.greedy_modularity_communities(
                graph, weight="weight"
            )
        ]
        assert sorted(map(sorted, communities)) == sorted(
            map(sorted, reference)
        )
