"""Tests for repro.clustering.indexes (the paper's Table 2 + baselines)."""

import math

import numpy as np
import pytest

from repro.clustering.indexes import (
    BASELINE_INDEXES,
    INDEX_DIRECTIONS,
    PAPER_INDEXES,
    ak_index,
    bk_index,
    ck_index,
    compute_index,
    ek_index,
    fk_index,
    index_names,
)
from repro.clustering.model import ClusterStats
from repro.errors import ClusteringError


def blobs(k=3, n_per=10, d=12, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.zeros((k, d))
    for i in range(k):
        centers[i, i * (d // k) : (i + 1) * (d // k)] = 1.0
    rows, labels = [], []
    for i in range(k):
        for _ in range(n_per):
            rows.append(centers[i] + noise * np.abs(rng.normal(size=d)))
            labels.append(i)
    return np.array(rows), np.array(labels)


def stats_for(matrix, labels):
    return ClusterStats.from_labels(matrix, labels)


class TestRegistry:
    def test_names_and_directions_complete(self):
        for name in index_names():
            assert name in INDEX_DIRECTIONS
        assert index_names(include_baselines=False) == PAPER_INDEXES
        assert set(BASELINE_INDEXES) <= set(index_names())

    def test_directions(self):
        assert INDEX_DIRECTIONS["ak"] == "max"
        assert INDEX_DIRECTIONS["bk"] == "min"
        assert INDEX_DIRECTIONS["fk"] == "max"
        assert INDEX_DIRECTIONS["davies_bouldin"] == "min"

    def test_unknown_index(self):
        matrix, labels = blobs()
        with pytest.raises(ClusteringError, match="unknown index"):
            compute_index("zk", matrix, labels)


class TestPaperIndexes:
    def test_ak_perfect_clusters(self):
        matrix, labels = blobs(noise=0.0)
        assert ak_index(stats_for(matrix, labels)) == pytest.approx(1.0)

    def test_bk_low_for_separated(self):
        matrix, labels = blobs(noise=0.0)
        assert bk_index(stats_for(matrix, labels)) == pytest.approx(0.0, abs=1e-12)

    def test_ck_positive_for_good_split_negative_for_bad(self):
        matrix, labels = blobs(k=2, noise=0.0)
        good = ck_index(stats_for(matrix, labels))
        rng = np.random.default_rng(0)
        bad_labels = rng.integers(0, 2, size=labels.shape[0])
        bad_labels[:2] = [0, 1]
        bad = ck_index(stats_for(matrix, bad_labels))
        assert good > bad

    def test_ek_saturates_on_zero_esim(self):
        matrix, labels = blobs(k=2, noise=0.0)
        assert ek_index(stats_for(matrix, labels)) == math.inf

    def test_ek_ratio_greater_for_better_split(self):
        matrix, labels = blobs(k=2, noise=0.3, seed=3)
        good = ek_index(stats_for(matrix, labels))
        bad_labels = np.array([0, 1] * (labels.shape[0] // 2))
        bad = ek_index(stats_for(matrix, bad_labels))
        assert good > bad

    def test_fk_divides_by_log10k(self):
        matrix, labels = blobs(k=2, noise=0.0)
        stats = stats_for(matrix, labels)
        assert fk_index(stats) == pytest.approx(
            stats.mean_isim() / math.log10(2)
        )

    def test_fk_requires_k_at_least_two(self):
        matrix, __ = blobs(k=2, noise=0.0)
        labels = np.zeros(matrix.shape[0], dtype=int)
        with pytest.raises(ClusteringError):
            fk_index(stats_for(matrix, labels))

    def test_paper_notation_variants_differ_but_correlate(self):
        matrix, labels = blobs(k=3, noise=0.4, seed=5)
        stats = stats_for(matrix, labels)
        sensible = ck_index(stats, paper_notation=False)
        printed = ck_index(stats, paper_notation=True)
        # Both readings must at least agree on the sign for a decent split.
        assert (sensible > 0) == (printed > 0)

    def test_compute_index_uses_prebuilt_stats(self):
        matrix, labels = blobs(k=2)
        stats = stats_for(matrix, labels)
        direct = compute_index("ak", matrix, labels, stats=stats)
        assert direct == pytest.approx(ak_index(stats))


class TestIndexSelectionBehaviour:
    """The selection behaviour the paper's §3(i) experiment relies on."""

    def _index_curve(self, name, matrix, true_k, k_range=(2, 3, 4, 5)):
        from repro.clustering.algorithms import cluster

        values = {}
        for k in k_range:
            solution = cluster(matrix, k, method="rbr", seed=0)
            values[k] = compute_index(
                name, matrix, solution.labels, stats=solution.stats
            )
        return values

    def test_fk_picks_true_k_two(self):
        matrix, __ = blobs(k=2, n_per=15, noise=0.25, seed=7)
        curve = self._index_curve("fk", matrix, 2)
        assert max(curve, key=curve.get) == 2

    def test_ak_monotone_nondecreasing_in_k(self):
        matrix, __ = blobs(k=2, n_per=15, noise=0.3, seed=8)
        curve = self._index_curve("ak", matrix, 2)
        values = [curve[k] for k in sorted(curve)]
        assert values[-1] >= values[0]


class TestBaselines:
    def test_silhouette_prefers_true_k(self):
        matrix, labels = blobs(k=3, noise=0.1, seed=9)
        good = compute_index("silhouette", matrix, labels)
        bad_labels = np.array([0, 1] * (labels.shape[0] // 2))
        bad = compute_index("silhouette", matrix, bad_labels)
        assert good > bad

    def test_silhouette_range(self):
        matrix, labels = blobs(k=2, noise=0.2, seed=10)
        value = compute_index("silhouette", matrix, labels)
        assert -1.0 <= value <= 1.0

    def test_calinski_harabasz_higher_for_true_split(self):
        matrix, labels = blobs(k=2, noise=0.2, seed=11)
        good = compute_index("calinski_harabasz", matrix, labels)
        bad_labels = np.array([0, 1] * (labels.shape[0] // 2))
        bad = compute_index("calinski_harabasz", matrix, bad_labels)
        assert good > bad

    def test_davies_bouldin_lower_for_true_split(self):
        matrix, labels = blobs(k=2, noise=0.2, seed=12)
        good = compute_index("davies_bouldin", matrix, labels)
        bad_labels = np.array([0, 1] * (labels.shape[0] // 2))
        bad = compute_index("davies_bouldin", matrix, bad_labels)
        assert good < bad

    def test_single_cluster_rejected(self):
        matrix, __ = blobs(k=2)
        ones = np.zeros(matrix.shape[0], dtype=int)
        for name in ("silhouette", "calinski_harabasz", "davies_bouldin"):
            with pytest.raises(ClusteringError):
                compute_index(name, matrix, ones)
