"""Concurrency stress: threads + processes hammering one cache_dir.

The disk store's contract under contention: flock-serialised appends
mean no entry is ever lost or torn, every reader sees byte-identical
vectors (or a clean miss while a write is in flight), and the
observable state (entry count, disk-hit counter) moves monotonically.
"""

import threading
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.polysemy.cache_store import DiskCacheStore
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher

N_THREAD_WORKERS = 4
N_PROCESS_WORKERS = 2
TERMS_PER_WORKER = 10
RESULT_TIMEOUT = 120  # seconds; a deadlock fails the test, not the run


def expected_vector(term: str) -> np.ndarray:
    """The one true vector for ``term`` — any other bytes are corruption."""
    return np.random.default_rng(zlib.crc32(term.encode())).normal(size=23)


def term_universe() -> list[str]:
    total = (N_THREAD_WORKERS + N_PROCESS_WORKERS) * TERMS_PER_WORKER
    return [f"term {i}" for i in range(total)]


def hammer(store: DiskCacheStore, mine: list[str]) -> int:
    """Write my slice, then read the whole universe; count corruptions."""
    bad = 0
    for term in mine:
        store.put(("fp", term, "cfg"), expected_vector(term))
    for term in term_universe():
        got = store.get(("fp", term, "cfg"))
        # None is legal (that term's writer may not have run yet);
        # wrong bytes never are.
        if got is not None and got.tobytes() != expected_vector(term).tobytes():
            bad += 1
    return bad


def process_worker(cache_dir: str, start: int) -> int:
    """Pool-process entry: a private handle on the shared directory."""
    store = DiskCacheStore(cache_dir)
    mine = term_universe()[start : start + TERMS_PER_WORKER]
    return hammer(store, mine)


class TestDiskStoreUnderContention:
    def test_threads_and_processes_share_one_directory(self, tmp_path):
        universe = term_universe()
        shared = DiskCacheStore(tmp_path)  # one handle shared by threads
        observed: list[tuple[int, int]] = []
        stop = threading.Event()

        def observe():
            while not stop.is_set():
                stats = shared.stats()
                observed.append((stats["disk_hits"], len(shared)))
                stop.wait(0.002)

        observer = threading.Thread(target=observe)
        observer.start()
        try:
            with (
                ThreadPoolExecutor(N_THREAD_WORKERS) as threads,
                ProcessPoolExecutor(N_PROCESS_WORKERS) as processes,
            ):
                thread_futures = [
                    threads.submit(
                        hammer,
                        shared,
                        universe[
                            i * TERMS_PER_WORKER : (i + 1) * TERMS_PER_WORKER
                        ],
                    )
                    for i in range(N_THREAD_WORKERS)
                ]
                process_futures = [
                    processes.submit(
                        process_worker,
                        str(tmp_path),
                        (N_THREAD_WORKERS + j) * TERMS_PER_WORKER,
                    )
                    for j in range(N_PROCESS_WORKERS)
                ]
                corruptions = sum(
                    f.result(timeout=RESULT_TIMEOUT)
                    for f in thread_futures + process_futures
                )
        finally:
            stop.set()
            observer.join(timeout=RESULT_TIMEOUT)
        assert corruptions == 0

        # No lost and no duplicated entries: a fresh handle sees exactly
        # one byte-identical vector per written term.
        fresh = DiskCacheStore(tmp_path)
        assert len(fresh) == len(universe)
        for term in universe:
            got = fresh.get(("fp", term, "cfg"))
            assert got is not None, f"lost entry: {term}"
            assert got.tobytes() == expected_vector(term).tobytes()
        assert fresh.stats()["disk_hits"] == len(universe)

        # Monotonically consistent stats: neither the hit counter nor
        # the entry count ever moved backwards while hammering.
        for (hits_a, len_a), (hits_b, len_b) in zip(observed, observed[1:]):
            assert hits_b >= hits_a
            assert len_b >= len_a

    def test_concurrent_enrichers_on_one_cache_dir(self, tmp_path):
        """Two full pipelines sharing a store race to identical reports."""
        scenario = make_enrichment_scenario(
            seed=5, n_concepts=20, docs_per_concept=4,
            polysemy_histogram={2: 3},
        )

        def enrich_once(worker_backend: str):
            config = EnrichmentConfig(
                n_candidates=6,
                cache_dir=str(tmp_path),
                n_workers=2,
                worker_backend=worker_backend,
                batch_size=2,
            )
            enricher = OntologyEnricher(
                scenario.ontology, config=config,
                pos_lexicon=scenario.pos_lexicon,
            )
            report = enricher.enrich(scenario.corpus)
            return [
                (
                    t.term, t.polysemic, t.n_senses, t.skipped_reason,
                    [(p.rank, p.term, p.cosine) for p in t.propositions],
                )
                for t in report.terms
            ]

        with ThreadPoolExecutor(2) as pool:
            futures = [
                pool.submit(enrich_once, backend)
                for backend in ("thread", "process")
            ]
            first, second = (
                f.result(timeout=RESULT_TIMEOUT * 2) for f in futures
            )
        assert first == second

        # The shared store is coherent afterwards: a third, warm run
        # featurises nothing.
        config = EnrichmentConfig(n_candidates=6, cache_dir=str(tmp_path))
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        report = enricher.enrich(scenario.corpus)
        assert report.cache["misses"] == 0
        assert report.cache["hits"] > 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
