"""Tests for repro.extraction (candidates, measures, extractor, evaluation)."""

import math

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.errors import ExtractionError
from repro.extraction.candidates import harvest_candidates
from repro.extraction.evaluation import (
    precision_at_k,
    precision_curve,
    reference_terms_from_ontology,
)
from repro.extraction.extractor import BioTexExtractor
from repro.extraction.measures import MEASURE_NAMES, compute_measure
from repro.ontology.model import Concept, Ontology
from repro.text.postag import LexiconTagger

LEXICON = {
    "corneal": "ADJ", "injury": "NOUN", "wound": "NOUN", "healing": "NOUN",
    "eye": "NOUN", "disease": "NOUN", "patient": "NOUN", "chronic": "ADJ",
    "heals": "VERB", "observed": "VERB", "treatment": "NOUN",
}


def make_corpus():
    return Corpus(
        [
            Document("d1", [["corneal", "injury", "heals"],
                            ["wound", "healing", "observed"]]),
            Document("d2", [["corneal", "injury", "treatment"],
                            ["chronic", "eye", "disease"]]),
            Document("d3", [["patient", "wound", "healing"]]),
        ]
    )


def make_context(min_frequency=1):
    return harvest_candidates(
        make_corpus(),
        tagger=LexiconTagger(LEXICON),
        min_frequency=min_frequency,
    )


class TestHarvestCandidates:
    def test_pattern_filtered_candidates_found(self):
        context = make_context()
        assert ("corneal", "injury") in context.candidates
        assert ("wound", "healing") in context.candidates
        # verbs break the noun-phrase patterns
        assert ("injury", "heals") not in context.candidates

    def test_counts(self):
        context = make_context()
        ci = context.candidates[("corneal", "injury")]
        assert ci.frequency == 2
        assert ci.doc_frequency == 2
        assert ci.per_doc == {"d1": 1, "d2": 1}

    def test_doc_lengths_and_avg(self):
        context = make_context()
        assert context.doc_lengths["d1"] == 6
        assert context.avg_doc_length == pytest.approx((6 + 6 + 3) / 3)

    def test_min_frequency_filter(self):
        context = make_context(min_frequency=2)
        assert ("corneal", "injury") in context.candidates
        assert ("chronic", "eye") not in context.candidates

    def test_nested_in(self):
        context = make_context()
        containing = context.nested_in(("injury",))
        texts = {c.text() for c in containing}
        assert "corneal injury" in texts

    def test_empty_corpus_rejected(self):
        with pytest.raises(ExtractionError):
            harvest_candidates(Corpus())

    def test_bad_min_frequency(self):
        with pytest.raises(ExtractionError):
            harvest_candidates(make_corpus(), min_frequency=0)

    def test_pattern_weight_recorded(self):
        context = make_context()
        assert context.candidates[("corneal", "injury")].pattern_weight > 0


class TestMeasures:
    def test_all_measures_cover_all_candidates(self):
        context = make_context()
        for name in MEASURE_NAMES:
            scores = compute_measure(name, context)
            assert set(scores) == set(context.candidates), name

    def test_unknown_measure(self):
        with pytest.raises(ExtractionError, match="unknown measure"):
            compute_measure("pagerank", make_context())

    def test_c_value_length_factor(self):
        context = make_context()
        scores = compute_measure("c_value", context)
        # "chronic eye disease" occurs once, length 3 → log2(4)*1 = 2
        assert scores[("chronic", "eye", "disease")] == pytest.approx(2.0)

    def test_c_value_nested_correction(self):
        context = make_context()
        scores = compute_measure("c_value", context)
        # "injury" (freq 2) is nested in "corneal injury" (2),
        # "injury treatment" (1), "corneal injury treatment" (1):
        # corrected freq = 2 - (2+1+1)/3 = 2/3 → ×log2(2) = 2/3.
        assert scores[("injury",)] == pytest.approx(2 / 3)
        # and it must score below the maximal term that contains it
        assert scores[("injury",)] < scores[("corneal", "injury")]

    def test_tf_idf_favours_rare_terms(self):
        context = make_context()
        scores = compute_measure("tf_idf", context)
        # same frequency, lower df → higher score
        assert scores[("chronic", "eye", "disease")] > 0

    def test_okapi_positive_and_finite(self):
        scores = compute_measure("okapi", make_context())
        assert all(math.isfinite(v) and v >= 0 for v in scores.values())

    def test_fusion_zero_when_either_zero(self):
        context = make_context()
        cval = compute_measure("c_value", context)
        fused = compute_measure("f_tfidf_c", context)
        for tokens, value in cval.items():
            if value <= 0:
                assert fused[tokens] == 0.0

    def test_lidf_uses_pattern_weight(self):
        context = make_context()
        scores = compute_measure("lidf_value", context)
        assert scores[("corneal", "injury")] > 0

    def test_tergraph_finite(self):
        scores = compute_measure("tergraph", make_context())
        assert all(math.isfinite(v) and v >= 0 for v in scores.values())


class TestBioTexExtractor:
    def test_extract_ranks_descending(self):
        extractor = BioTexExtractor(
            tagger=LexiconTagger(LEXICON), measure="lidf_value"
        )
        ranked = extractor.extract(make_corpus())
        scores = [t.score for t in ranked]
        assert scores == sorted(scores, reverse=True)
        assert [t.rank for t in ranked] == list(range(1, len(ranked) + 1))

    def test_min_length_filters_single_words(self):
        extractor = BioTexExtractor(tagger=LexiconTagger(LEXICON), min_length=2)
        ranked = extractor.extract(make_corpus())
        assert all(len(t.tokens) >= 2 for t in ranked)

    def test_top_k(self):
        extractor = BioTexExtractor(tagger=LexiconTagger(LEXICON))
        ranked = extractor.extract(make_corpus(), top_k=3)
        assert len(ranked) == 3

    def test_bad_top_k(self):
        extractor = BioTexExtractor(tagger=LexiconTagger(LEXICON))
        with pytest.raises(ExtractionError):
            extractor.extract(make_corpus(), top_k=0)

    def test_measure_override(self):
        extractor = BioTexExtractor(tagger=LexiconTagger(LEXICON), measure="tf_idf")
        a = extractor.extract(make_corpus(), measure="c_value")
        assert extractor.measure == "tf_idf"  # instance unchanged
        assert a  # ran with the override

    def test_unknown_measure_rejected_at_init(self):
        with pytest.raises(ExtractionError):
            BioTexExtractor(measure="bm42")

    def test_deterministic(self):
        extractor = BioTexExtractor(tagger=LexiconTagger(LEXICON))
        a = extractor.extract(make_corpus())
        b = extractor.extract(make_corpus())
        assert [(t.term, t.score) for t in a] == [(t.term, t.score) for t in b]

    def test_context_retained(self):
        extractor = BioTexExtractor(tagger=LexiconTagger(LEXICON))
        extractor.extract(make_corpus())
        assert extractor.context_ is not None
        assert extractor.context_.n_documents == 3


class TestEvaluation:
    def make_ranked(self):
        extractor = BioTexExtractor(tagger=LexiconTagger(LEXICON), min_length=2)
        return extractor.extract(make_corpus())

    def test_reference_from_ontology(self):
        onto = Ontology("ref")
        onto.add_concept(Concept("A", "Corneal Injury", synonyms=["wound healing"]))
        reference = reference_terms_from_ontology(onto)
        assert "corneal injury" in reference
        assert "wound healing" in reference

    def test_precision_at_k(self):
        ranked = self.make_ranked()
        reference = {"corneal injury", "wound healing"}
        p_all = precision_at_k(ranked, reference, k=len(ranked))
        assert 0 < p_all <= 1.0
        p2 = precision_at_k(ranked, reference, k=2)
        assert p2 >= p_all  # good measures front-load correct terms

    def test_precision_k_beyond_list(self):
        ranked = self.make_ranked()
        assert precision_at_k(ranked, {"corneal injury"}, k=1000) <= 1.0

    def test_precision_empty_list(self):
        assert precision_at_k([], {"x"}, k=5) == 0.0

    def test_bad_k(self):
        with pytest.raises(ExtractionError):
            precision_at_k(self.make_ranked(), set(), k=0)

    def test_precision_curve_monotone_ks(self):
        ranked = self.make_ranked()
        curve = precision_curve(ranked, {"corneal injury"}, ks=(1, 2, 4))
        assert set(curve) == {1, 2, 4}
        assert all(0.0 <= v <= 1.0 for v in curve.values())
