"""Tests for repro.eval (paper constants + experiment runners, small sizes)."""

import pytest

from repro.eval import paper
from repro.eval.experiments import (
    run_linkage_precision_experiment,
    run_polysemy_detection_experiment,
    run_sense_number_experiment,
    run_table1_experiment,
    run_table3_experiment,
)


class TestPaperConstants:
    def test_table1_totals(self):
        en = paper.TABLE1_POLYSEMY_COUNTS[("umls", "en")]
        assert en[2] == 54_257

    def test_table3_has_ten_rows_five_correct(self):
        assert len(paper.TABLE3_PROPOSITIONS) == 10
        assert sum(1 for __, ___, ok in paper.TABLE3_PROPOSITIONS if ok) == 5
        assert paper.TABLE3_CORRECT_IN_TOP10 == 5

    def test_table3_cosines_descending(self):
        cosines = [c for __, c, ___ in paper.TABLE3_PROPOSITIONS]
        assert cosines == sorted(cosines, reverse=True)

    def test_table4_monotone(self):
        row = paper.TABLE4_PRECISION_AT
        assert row[1] <= row[2] <= row[5] <= row[10]

    def test_mshwsd_consistency(self):
        # 189/203 two-sense entities is exactly the published 93.1 %
        assert round(189 / 203, 3) == paper.SENSE_PREDICTION_BEST_ACCURACY


class TestTable1Experiment:
    def test_shapes_and_shape_match(self):
        result = run_table1_experiment(scale=5000, seed=0)
        stats = result.statistics
        assert set(stats.histograms) == set(paper.TABLE1_POLYSEMY_COUNTS)
        # scaled counts preserve the dominance of the k=2 bin
        measured = stats.histograms[("umls", "en")]
        assert measured[2] > measured[3] >= measured[4]
        assert "Table 1" in result.table()

    def test_deterministic(self):
        a = run_table1_experiment(scale=5000, seed=3)
        b = run_table1_experiment(scale=5000, seed=3)
        assert a.statistics.histograms == b.statistics.histograms


class TestSenseNumberExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sense_number_experiment(
            n_entities=8,
            contexts_per_sense=15,
            algorithms=("rb", "direct"),
            representations=("bow",),
            seed=0,
        )

    def test_grid_complete(self, result):
        assert len(result.accuracies) == 2 * 1 * 5
        assert all(0.0 <= v <= 1.0 for v in result.accuracies.values())

    def test_k_distribution_recorded(self, result):
        assert sum(result.k_distribution.values()) == 8

    def test_best_helpers(self, result):
        (algo, rep, index), acc = result.best()
        assert algo in ("rb", "direct") and rep == "bow"
        assert acc == max(result.accuracies.values())
        by_index = result.best_by_index()
        assert set(by_index) == {"ak", "bk", "ck", "ek", "fk"}


class TestTable3Experiment:
    def test_corneal_injuries_reproduction(self):
        result = run_table3_experiment(seed=0, docs_per_concept=10)
        assert 1 <= len(result.propositions) <= 10
        assert result.n_correct() >= 1
        cosines = [p.cosine for p in result.propositions]
        assert cosines == sorted(cosines, reverse=True)
        # gold contains the paper's synonyms and fathers
        assert "corneal injury" in result.gold
        assert "corneal diseases" in result.gold


class TestLinkageExperiment:
    def test_small_run_monotone(self):
        evaluation = run_linkage_precision_experiment(
            n_terms=6, n_concepts=40, docs_per_concept=4, seed=0
        )
        assert evaluation.n_terms == 6
        row = evaluation.as_row()
        assert row[1] <= row[2] <= row[5] <= row[10]


class TestPolysemyDetectionExperiment:
    def test_high_f_on_benchmark(self):
        results = run_polysemy_detection_experiment(
            classifiers=("forest",), n_entities=40, n_splits=4, seed=0
        )
        assert set(results) == {"forest"}
        assert results["forest"] > 0.85
