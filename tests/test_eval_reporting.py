"""Tests for repro.eval.reporting (paper-vs-measured rendering)."""

import pytest

from repro.eval.experiments import (
    SenseNumberResult,
    Table3Result,
    TermExtractionResult,
)
from repro.eval.reporting import (
    render_polysemy_detection,
    render_sense_number,
    render_table3,
    render_table4,
    render_term_extraction,
)
from repro.linkage.evaluation import LinkageEvaluation, TermLinkageOutcome
from repro.linkage.linker import Proposition


class TestRenderSenseNumber:
    def make_result(self, fk=0.93, ek=0.9):
        result = SenseNumberResult(n_entities=10, k_distribution={2: 9, 3: 1})
        result.accuracies = {
            ("rb", "bow", "fk"): fk,
            ("rb", "bow", "ek"): ek,
        }
        return result

    def test_headline_contains_paper_number(self):
        text = render_sense_number(self.make_result())
        assert "0.931" in text
        assert "0.930" in text

    def test_tie_flagged(self):
        text = render_sense_number(self.make_result(fk=0.9, ek=0.9))
        assert "(tied)" in text
        assert "ek, fk" in text

    def test_single_winner_not_flagged(self):
        text = render_sense_number(self.make_result())
        assert "(tied)" not in text


class TestRenderTable3:
    def test_flags_and_summary(self):
        propositions = [
            Proposition(rank=1, term="corneal injury", concept_ids=("D",),
                        cosine=0.9),
            Proposition(rank=2, term="noise term", concept_ids=("X",),
                        cosine=0.5),
        ]
        result = Table3Result(propositions=propositions,
                              gold={"corneal injury"})
        text = render_table3(result)
        assert "corneal injury" in text
        assert "paper 5, measured 1" in text


class TestRenderTable4:
    def test_rows_for_all_ks(self):
        outcome = TermLinkageOutcome(
            term="t", concept_id="C",
            propositions=[Proposition(1, "gold term", ("C",), 0.8)],
            gold={"gold term"},
        )
        evaluation = LinkageEvaluation(outcomes=[outcome])
        text = render_table4(evaluation)
        for k in (1, 2, 5, 10):
            assert f"Top {k}" in text
        assert "1.000" in text
        assert "0.333" in text  # the paper column


class TestRenderOthers:
    def test_polysemy_detection_sorted(self):
        text = render_polysemy_detection({"forest": 0.99, "svm": 0.91})
        lines = text.splitlines()
        forest_line = next(i for i, l in enumerate(lines) if "forest" in l)
        svm_line = next(i for i, l in enumerate(lines) if "svm" in l)
        assert forest_line < svm_line
        assert "0.98" in text  # paper headline

    def test_term_extraction_table(self):
        result = TermExtractionResult(
            precision={"lidf_value": {10: 0.6, 50: 0.8}},
            n_candidates={"lidf_value": 100},
        )
        text = render_term_extraction(result)
        assert "P@10" in text and "P@50" in text
        assert "0.600" in text
