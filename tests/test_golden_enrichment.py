"""Golden end-to-end regression: persisted caching never changes output.

A full :class:`~repro.workflow.report.EnrichmentReport` over the
deterministic seed scenario is pinned in
``tests/goldens/golden_enrichment_report.json`` — terms, polysemy
labels, sense counts, propositions, warnings, and the cold/warm cache
counters of a disk-backed run.  Both the cold run (empty ``cache_dir``)
and the warm run (a brand-new enricher reading the store a previous
process left behind) must reproduce it exactly, under every worker
backend.

Regenerate after an *intentional* output change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_enrichment.py -q
"""

import json
import math
import os
from pathlib import Path

import pytest

from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher

GOLDEN_PATH = (
    Path(__file__).resolve().parent / "goldens"
    / "golden_enrichment_report.json"
)

SCENARIO_KWARGS = dict(
    seed=13, n_concepts=25, docs_per_concept=5, polysemy_histogram={2: 4}
)
CONFIG_KWARGS = dict(n_candidates=8, seed=0)

#: Counters whose exact values the golden file pins (store_bytes is
#: checked loosely: index-line lengths may vary by a few bytes when a
#: platform renders checksums/offsets with different digit counts).
PINNED_COUNTERS = ("hits", "misses", "disk_hits", "evictions", "entries")


def report_snapshot(report) -> dict:
    return {
        "detector_trained": report.detector_trained,
        "warnings": list(report.warnings),
        "terms": [
            {
                "term": t.term,
                "extraction_rank": t.extraction_rank,
                "extraction_score": float(t.extraction_score),
                "n_contexts": t.n_contexts,
                "polysemic": t.polysemic,
                "n_senses": t.n_senses,
                "skipped_reason": t.skipped_reason,
                "propositions": [
                    {
                        "rank": p.rank,
                        "term": p.term,
                        "cosine": float(p.cosine),
                    }
                    for p in t.propositions
                ],
            }
            for t in report.terms
        ],
    }


def assert_snapshot_equal(actual, golden, path="report"):
    """Recursive equality with tolerant float comparison."""
    if isinstance(golden, float):
        assert isinstance(actual, (int, float)), path
        assert math.isclose(
            float(actual), golden, rel_tol=1e-6, abs_tol=1e-9
        ), f"{path}: {actual!r} != {golden!r}"
    elif isinstance(golden, dict):
        assert isinstance(actual, dict) and set(actual) == set(golden), path
        for key in golden:
            assert_snapshot_equal(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list) and len(actual) == len(golden), path
        for i, (a, g) in enumerate(zip(actual, golden)):
            assert_snapshot_equal(a, g, f"{path}[{i}]")
    else:
        assert actual == golden, f"{path}: {actual!r} != {golden!r}"


@pytest.fixture(scope="module")
def scenario():
    return make_enrichment_scenario(**SCENARIO_KWARGS)


def run(scenario, cache_dir, *, n_workers=1, worker_backend="thread"):
    config = EnrichmentConfig(
        cache_dir=str(cache_dir),
        n_workers=n_workers,
        worker_backend=worker_backend,
        **CONFIG_KWARGS,
    )
    enricher = OntologyEnricher(
        scenario.ontology, config=config, pos_lexicon=scenario.pos_lexicon
    )
    return enricher.enrich(scenario.corpus)


class TestGoldenEnrichment:
    def test_regenerate_or_verify_golden(self, scenario, tmp_path):
        """Sequential cold/warm runs against the pinned golden file."""
        cold = run(scenario, tmp_path)
        warm = run(scenario, tmp_path)
        payload = {
            "scenario": SCENARIO_KWARGS,
            "config": CONFIG_KWARGS,
            "report": report_snapshot(cold),
            "cold_cache": {k: cold.cache[k] for k in PINNED_COUNTERS},
            "warm_cache": {k: warm.cache[k] for k in PINNED_COUNTERS},
        }
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert_snapshot_equal(payload["report"], golden["report"])
        assert payload["cold_cache"] == golden["cold_cache"]
        assert payload["warm_cache"] == golden["warm_cache"]
        # Warm output itself must match the pin too (cold == warm).
        assert_snapshot_equal(report_snapshot(warm), golden["report"])
        assert cold.cache["store_bytes"] > 0
        assert warm.cache["store_bytes"] == cold.cache["store_bytes"]

    @pytest.mark.parametrize(
        "backend,workers", [("thread", 2), ("process", 2)]
    )
    def test_worker_backends_reproduce_the_golden_report(
        self, scenario, tmp_path, backend, workers
    ):
        golden = json.loads(GOLDEN_PATH.read_text())
        cold = run(
            scenario, tmp_path, n_workers=workers, worker_backend=backend
        )
        warm = run(
            scenario, tmp_path, n_workers=workers, worker_backend=backend
        )
        assert_snapshot_equal(report_snapshot(cold), golden["report"])
        assert_snapshot_equal(report_snapshot(warm), golden["report"])
        assert {
            k: cold.cache[k] for k in PINNED_COUNTERS
        } == golden["cold_cache"]
        assert {
            k: warm.cache[k] for k in PINNED_COUNTERS
        } == golden["warm_cache"]

    def test_cache_disabled_still_matches_the_golden_report(self, scenario):
        """The pinned output is the cache-free truth, not a cache artefact."""
        golden = json.loads(GOLDEN_PATH.read_text())
        config = EnrichmentConfig(feature_cache=False, **CONFIG_KWARGS)
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        report = enricher.enrich(scenario.corpus)
        assert_snapshot_equal(report_snapshot(report), golden["report"])
