"""Edge cases and failure injection across modules."""

import json

import numpy as np
import pytest

from repro.clustering.kmeans import spherical_kmeans
from repro.clustering.model import ClusterStats
from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.errors import LinkageError, OntologyError
from repro.linkage.linker import SemanticLinker
from repro.ontology.io import ontology_from_json
from repro.ontology.model import Concept, Ontology
from repro.senses.predictor import SenseCountPredictor


class TestCorruptedOntologyPayloads:
    def test_missing_concept_fields(self):
        payload = {"format_version": 1, "concepts": [{"id": "A"}]}
        with pytest.raises(KeyError):
            ontology_from_json(payload)

    def test_dangling_father_rejected(self):
        payload = {
            "format_version": 1,
            "concepts": [
                {"id": "A", "preferred_term": "a term", "fathers": ["GHOST"]}
            ],
        }
        with pytest.raises(OntologyError):
            ontology_from_json(payload)

    def test_cyclic_payload_rejected(self):
        payload = {
            "format_version": 1,
            "concepts": [
                {"id": "A", "preferred_term": "a", "fathers": ["B"]},
                {"id": "B", "preferred_term": "b", "fathers": ["A"]},
            ],
        }
        with pytest.raises(OntologyError, match="cycle"):
            ontology_from_json(payload)

    def test_duplicate_ids_rejected(self):
        payload = {
            "format_version": 1,
            "concepts": [
                {"id": "A", "preferred_term": "a"},
                {"id": "A", "preferred_term": "again"},
            ],
        }
        with pytest.raises(OntologyError, match="duplicate"):
            ontology_from_json(payload)


class TestDegenerateCorpora:
    def test_empty_document_tokens(self):
        doc = Document("d", [])
        assert doc.tokens() == []
        assert doc.n_tokens() == 0

    def test_corpus_of_empty_documents(self):
        corpus = Corpus([Document("d1", []), Document("d2", [])])
        assert corpus.n_tokens() == 0
        assert corpus.contexts_for_term("anything") == []

    def test_single_token_documents(self):
        corpus = Corpus([Document(f"d{i}", [["solo"]]) for i in range(3)])
        contexts = corpus.contexts_for_term("solo", window=5)
        assert len(contexts) == 3
        assert all(ctx.tokens == () for ctx in contexts)


class TestLinkerDegenerate:
    def make_tiny(self):
        onto = Ontology("tiny")
        onto.add_concept(Concept("A", "alpha term"))
        onto.add_concept(Concept("B", "beta term"), fathers=["A"])
        corpus = Corpus(
            [
                Document("d1", [["alpha", "term", "near", "beta", "term"]]),
                Document("d2", [["beta", "term", "alone", "here"]]),
            ]
        )
        return onto, corpus

    def test_linker_on_tiny_scenario(self):
        onto, corpus = self.make_tiny()
        linker = SemanticLinker(onto, corpus, top_k=5)
        propositions = linker.propose("beta term")
        assert propositions
        assert propositions[0].term == "alpha term"

    def test_candidate_without_context_raises(self):
        onto, corpus = self.make_tiny()
        linker = SemanticLinker(onto, corpus)
        with pytest.raises(LinkageError, match="no context"):
            linker.propose("missing term")

    def test_prepare_is_idempotent(self):
        onto, corpus = self.make_tiny()
        linker = SemanticLinker(onto, corpus)
        linker.prepare()
        first_graph = linker._graph
        linker.propose("beta term")
        assert linker._graph is first_graph  # no rebuild for known terms

    def test_unanticipated_candidate_triggers_one_rebuild(self):
        onto, corpus = self.make_tiny()
        corpus.add(Document("d3", [["novel", "thing", "near", "alpha", "term"]]))
        linker = SemanticLinker(onto, corpus)
        linker.prepare()
        first_graph = linker._graph
        propositions = linker.propose("novel thing")
        assert linker._graph is not first_graph
        assert propositions


class TestClusteringDegenerate:
    def test_kmeans_single_point(self):
        solution = spherical_kmeans(np.array([[1.0, 0.0]]), 1, seed=0)
        assert solution.k == 1

    def test_stats_single_object(self):
        stats = ClusterStats.from_labels(
            np.array([[1.0, 0.0]]), np.array([0])
        )
        assert stats.k == 1
        assert stats.isim[0] == pytest.approx(1.0)
        assert stats.esim[0] == 0.0

    def test_kmeans_more_clusters_than_distinct_points(self):
        matrix = np.tile([1.0, 0.0], (5, 1))
        solution = spherical_kmeans(matrix, 3, seed=0)
        assert solution.k == 3
        assert len(set(solution.labels.tolist())) == 3


class TestPredictorTieBreaks:
    def test_equal_values_within_float_noise(self):
        predictor = SenseCountPredictor(index="ak", seed=0)
        # identical vectors: every clustering has ISIM ~1.0 for all k
        contexts = [("same", "words", "here")] * 8
        prediction = predictor.predict(contexts)
        values = set(round(v, 6) for v in prediction.index_values.values())
        assert values == {1.0}
        # the chosen k is an arg-optimum of the raw values
        raw = prediction.index_values
        assert raw[prediction.k] == max(raw.values())

    def test_min_direction_consistent(self):
        predictor = SenseCountPredictor(index="bk", seed=0)
        contexts = [("same", "words", "here")] * 8
        prediction = predictor.predict(contexts)
        raw = prediction.index_values
        assert raw[prediction.k] == min(raw.values())
