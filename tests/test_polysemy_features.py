"""Tests for the 23 polysemy features (direct + graph)."""

import numpy as np
import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.errors import CorpusError
from repro.polysemy.direct_features import DIRECT_FEATURE_NAMES, direct_features
from repro.polysemy.features import ALL_FEATURE_NAMES, PolysemyFeatureExtractor
from repro.polysemy.graph_features import (
    GRAPH_FEATURE_NAMES,
    build_context_graph,
    graph_features,
)


def mono_contexts(n=12, seed=0):
    """Contexts drawn from one vocabulary — a monosemous profile."""
    rng = np.random.default_rng(seed)
    vocab = [f"w{i}" for i in range(15)]
    return [
        tuple(rng.choice(vocab, size=8, replace=True)) for _ in range(n)
    ]


def poly_contexts(n_per=6, seed=0):
    """Contexts from two disjoint vocabularies — a polysemic profile."""
    rng = np.random.default_rng(seed)
    vocab_a = [f"a{i}" for i in range(15)]
    vocab_b = [f"b{i}" for i in range(15)]
    out = []
    for vocab in (vocab_a, vocab_b):
        out.extend(
            tuple(rng.choice(vocab, size=8, replace=True)) for _ in range(n_per)
        )
    return out


class TestFeatureInventory:
    def test_the_paper_counts(self):
        assert len(DIRECT_FEATURE_NAMES) == 11
        assert len(GRAPH_FEATURE_NAMES) == 12
        assert len(ALL_FEATURE_NAMES) == 23

    def test_no_duplicate_names(self):
        assert len(set(ALL_FEATURE_NAMES)) == 23


class TestDirectFeatures:
    def test_vector_shape_and_finite(self):
        vec = direct_features("corneal injuries", mono_contexts())
        assert vec.shape == (11,)
        assert np.all(np.isfinite(vec))

    def test_term_shape_features(self):
        vec = direct_features("corneal injuries", mono_contexts())
        names = list(DIRECT_FEATURE_NAMES)
        assert vec[names.index("term_n_tokens")] == 2.0
        assert vec[names.index("term_n_chars")] == len("corneal injuries")

    def test_polysemic_contexts_lower_mean_cosine(self):
        names = list(DIRECT_FEATURE_NAMES)
        idx = names.index("mean_pairwise_cosine")
        mono = direct_features("t", mono_contexts(seed=1))
        poly = direct_features("t", poly_contexts(seed=1))
        assert poly[idx] < mono[idx]

    def test_polysemic_contexts_higher_bisection_gain(self):
        names = list(DIRECT_FEATURE_NAMES)
        idx = names.index("bisect_balance_gain")
        mono = direct_features("t", mono_contexts(seed=2))
        poly = direct_features("t", poly_contexts(seed=2))
        assert poly[idx] > mono[idx]

    def test_bisection_ratio_above_one_for_polysemic(self):
        names = list(DIRECT_FEATURE_NAMES)
        idx = names.index("bisect_isim_ratio")
        poly = direct_features("t", poly_contexts(seed=9))
        assert poly[idx] > 1.2

    def test_polysemic_contexts_higher_entropy(self):
        names = list(DIRECT_FEATURE_NAMES)
        idx = names.index("log_vocab_size")
        mono = direct_features("t", mono_contexts(seed=3))
        poly = direct_features("t", poly_contexts(seed=3))
        assert poly[idx] > mono[idx]

    def test_single_context_degenerate(self):
        vec = direct_features("t", [("a", "b", "c")])
        assert np.all(np.isfinite(vec))

    def test_empty_contexts_finite(self):
        vec = direct_features("t", [])
        assert np.all(np.isfinite(vec))

    def test_doc_frequency_override(self):
        names = list(DIRECT_FEATURE_NAMES)
        idx = names.index("log_doc_frequency")
        a = direct_features("t", mono_contexts(), doc_frequency=2)
        b = direct_features("t", mono_contexts(), doc_frequency=10)
        assert a[idx] < b[idx]

    def test_two_contexts_degenerate_bisection(self):
        vec = direct_features("t", [("a", "b"), ("c", "d")])
        names = list(DIRECT_FEATURE_NAMES)
        assert vec[names.index("bisect_isim_gain")] == 0.0
        assert np.all(np.isfinite(vec))


class TestGraphFeatures:
    def test_vector_shape_and_finite(self):
        graph = build_context_graph(mono_contexts())
        vec = graph_features(graph)
        assert vec.shape == (12,)
        assert np.all(np.isfinite(vec))

    def test_empty_graph(self):
        graph = build_context_graph([])
        vec = graph_features(graph)
        assert np.all(vec == 0.0)

    def test_polysemic_graph_splits_into_communities(self):
        names = list(GRAPH_FEATURE_NAMES)
        idx_comp = names.index("n_components")
        mono_vec = graph_features(build_context_graph(mono_contexts(seed=4)))
        poly_vec = graph_features(build_context_graph(poly_contexts(seed=4)))
        # Disjoint sense vocabularies → disconnected context graph.
        assert poly_vec[idx_comp] > mono_vec[idx_comp]

    def test_polysemic_graph_higher_modularity(self):
        names = list(GRAPH_FEATURE_NAMES)
        idx = names.index("modularity")
        mono_vec = graph_features(build_context_graph(mono_contexts(seed=5)))
        poly_vec = graph_features(build_context_graph(poly_contexts(seed=5)))
        assert poly_vec[idx] > mono_vec[idx]

    def test_min_weight_pruning(self):
        contexts = [("a", "b"), ("a", "b"), ("c", "d")]
        graph = build_context_graph(contexts, min_weight=2.0)
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("c", "d")
        assert "c" not in graph  # isolated nodes dropped after pruning

    def test_window_limits_edges(self):
        graph = build_context_graph([("a", "b", "c", "d", "e")], window=2)
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")


class TestExtractor:
    def test_feature_set_selection(self):
        full = PolysemyFeatureExtractor(feature_set="all")
        direct = PolysemyFeatureExtractor(feature_set="direct")
        graph = PolysemyFeatureExtractor(feature_set="graph")
        contexts = mono_contexts()
        assert full.features_from_contexts("t", contexts).shape == (23,)
        assert direct.features_from_contexts("t", contexts).shape == (11,)
        assert graph.features_from_contexts("t", contexts).shape == (12,)
        assert full.n_features == 23

    def test_bad_feature_set(self):
        with pytest.raises(ValueError):
            PolysemyFeatureExtractor(feature_set="both")

    def test_features_from_corpus(self):
        corpus = Corpus(
            [
                Document("d1", [["the", "target", "term", "appears", "here"]]),
                Document("d2", [["target", "again", "with", "words"]]),
            ]
        )
        extractor = PolysemyFeatureExtractor()
        vec = extractor.features_from_corpus("target", corpus)
        assert vec.shape == (23,)

    def test_missing_term_raises(self):
        corpus = Corpus([Document("d", [["nothing", "here"]])])
        with pytest.raises(CorpusError, match="no context"):
            PolysemyFeatureExtractor().features_from_corpus("ghost", corpus)
