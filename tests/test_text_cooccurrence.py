"""Tests for repro.text.cooccurrence."""

import networkx as nx

from repro.text.cooccurrence import (
    CooccurrenceGraphBuilder,
    ego_graph,
    merge_term_tokens,
)


class TestMergeTermTokens:
    def test_merges_bigram(self):
        out = merge_term_tokens(
            ["corneal", "injuries", "heal"], [("corneal", "injuries")]
        )
        assert out == ["corneal injuries", "heal"]

    def test_longest_match_wins(self):
        out = merge_term_tokens(
            ["a", "b", "c"], [("a", "b"), ("a", "b", "c")]
        )
        assert out == ["a b c"]

    def test_case_insensitive(self):
        out = merge_term_tokens(["Corneal", "Injuries"], [("corneal", "injuries")])
        assert out == ["corneal injuries"]

    def test_no_match_passthrough_lowercases(self):
        assert merge_term_tokens(["X", "y"], []) == ["x", "y"]

    def test_overlapping_matches_do_not_double_consume(self):
        out = merge_term_tokens(["a", "b", "a"], [("a", "b"), ("b", "a")])
        assert out == ["a b", "a"]

    def test_empty_term_ignored(self):
        assert merge_term_tokens(["a"], [()]) == ["a"]


class TestCooccurrenceGraphBuilder:
    def test_window_cooccurrence(self):
        builder = CooccurrenceGraphBuilder(window=2, stop_language=None)
        graph = builder.build([["a", "b", "c"]])
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")
        assert not graph.has_edge("a", "c")  # distance 2, window 2 → no

    def test_weights_accumulate(self):
        builder = CooccurrenceGraphBuilder(window=2, stop_language=None)
        graph = builder.build([["a", "b"], ["a", "b"]])
        assert graph["a"]["b"]["weight"] == 2.0

    def test_node_counts(self):
        builder = CooccurrenceGraphBuilder(window=2, stop_language=None)
        graph = builder.build([["a", "b", "a"]])
        assert graph.nodes["a"]["count"] == 2

    def test_stopwords_excluded(self):
        builder = CooccurrenceGraphBuilder(window=3, stop_language="en")
        graph = builder.build([["cornea", "of", "eye"]])
        assert "of" not in graph
        assert graph.has_edge("cornea", "eye")

    def test_self_loops_avoided(self):
        builder = CooccurrenceGraphBuilder(window=3, stop_language=None)
        graph = builder.build([["a", "a", "a"]])
        assert graph.number_of_edges() == 0

    def test_min_weight_prunes(self):
        builder = CooccurrenceGraphBuilder(
            window=2, stop_language=None, min_weight=2.0
        )
        graph = builder.build([["a", "b"], ["a", "b"], ["c", "d"]])
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("c", "d")

    def test_terms_merged_into_nodes(self):
        builder = CooccurrenceGraphBuilder(
            window=2, stop_language=None, terms=[("corneal", "injuries")]
        )
        graph = builder.build([["corneal", "injuries", "heal"]])
        assert "corneal injuries" in graph
        assert graph.has_edge("corneal injuries", "heal")


class TestEgoGraph:
    def test_radius_one(self):
        g = nx.Graph()
        g.add_edges_from([("a", "b"), ("b", "c")])
        ego = ego_graph(g, "a", radius=1)
        assert set(ego.nodes) == {"a", "b"}

    def test_missing_node_returns_empty(self):
        ego = ego_graph(nx.Graph(), "missing")
        assert ego.number_of_nodes() == 0

    def test_returns_copy(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        ego = ego_graph(g, "a")
        ego.add_node("new")
        assert "new" not in g
