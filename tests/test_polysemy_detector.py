"""Tests for the polysemy dataset builder and detector (Step II end-to-end)."""

import numpy as np
import pytest

from repro.corpus.pubmed import PubMedSimulator, PubMedSpec
from repro.errors import CorpusError, NotFittedError, ValidationError
from repro.lexicon import BioLexicon
from repro.ontology.generator import GeneratorSpec, OntologyGenerator
from repro.polysemy.dataset import PolysemyDataset, build_polysemy_dataset
from repro.polysemy.detector import PolysemyDetector
from repro.polysemy.features import PolysemyFeatureExtractor


def make_scenario(seed=0, n_concepts=40, polysemy={2: 6, 3: 2}, docs_per_concept=4):
    lexicon = BioLexicon(seed=seed)
    spec = GeneratorSpec(
        n_concepts=n_concepts,
        n_roots=3,
        mean_synonyms=0.6,
        polysemy_histogram=dict(polysemy),
    )
    onto = OntologyGenerator(spec, lexicon=lexicon, seed=seed).generate()
    sim = PubMedSimulator(
        onto,
        lexicon,
        spec=PubMedSpec(mention_prob=0.9, related_mention_prob=0.2),
        seed=seed,
    )
    corpus = sim.generate_balanced(docs_per_concept)
    return onto, corpus


class TestDatasetBuilder:
    def test_builds_both_classes(self):
        onto, corpus = make_scenario()
        dataset = build_polysemy_dataset(onto, corpus, min_contexts=3, seed=0)
        assert dataset.n_samples > 10
        assert 0.0 < dataset.class_balance() < 1.0
        assert dataset.X.shape[1] == 23

    def test_labels_match_ontology(self):
        onto, corpus = make_scenario(seed=1)
        dataset = build_polysemy_dataset(onto, corpus, min_contexts=3, seed=0)
        for term, label in zip(dataset.terms, dataset.y):
            assert bool(label) == onto.is_polysemic(term)

    def test_max_monosemous_cap(self):
        onto, corpus = make_scenario(seed=2)
        dataset = build_polysemy_dataset(
            onto, corpus, min_contexts=3, max_monosemous=5, seed=0
        )
        assert int((dataset.y == 0).sum()) == 5

    def test_deterministic(self):
        onto, corpus = make_scenario(seed=3)
        a = build_polysemy_dataset(onto, corpus, min_contexts=3, seed=7)
        b = build_polysemy_dataset(onto, corpus, min_contexts=3, seed=7)
        assert a.terms == b.terms
        np.testing.assert_array_equal(a.X, b.X)

    def test_fails_without_polysemy(self):
        onto, corpus = make_scenario(seed=4, polysemy={})
        with pytest.raises(CorpusError):
            build_polysemy_dataset(onto, corpus, min_contexts=3)

    def test_alignment_validated(self):
        with pytest.raises(ValidationError):
            PolysemyDataset(
                X=np.zeros((2, 23)),
                y=np.zeros(3, dtype=int),
                terms=("a", "b"),
                feature_names=("f",) * 23,
            )


class TestDetector:
    def test_fit_predict_roundtrip(self):
        onto, corpus = make_scenario(seed=5)
        dataset = build_polysemy_dataset(onto, corpus, min_contexts=3, seed=0)
        detector = PolysemyDetector("forest", seed=0).fit(dataset)
        predictions = detector.predict_features(dataset.X)
        # training accuracy should be near-perfect for a forest
        assert float((predictions == dataset.y).mean()) > 0.95

    def test_predict_before_fit_raises(self):
        detector = PolysemyDetector("logistic")
        with pytest.raises(NotFittedError):
            detector.predict_features(np.zeros((1, 23)))

    def test_is_polysemic_on_corpus_term(self):
        onto, corpus = make_scenario(seed=6)
        dataset = build_polysemy_dataset(onto, corpus, min_contexts=3, seed=0)
        detector = PolysemyDetector("forest", seed=0).fit(dataset)
        poly_terms = [t for t, y in zip(dataset.terms, dataset.y) if y == 1]
        # is_polysemic scans the corpus per call; a sample keeps this fast
        mono_terms = [t for t, y in zip(dataset.terms, dataset.y) if y == 0][:20]
        poly_hits = sum(detector.is_polysemic(t, corpus) for t in poly_terms)
        mono_hits = sum(detector.is_polysemic(t, corpus) for t in mono_terms)
        assert poly_hits / len(poly_terms) > 0.8
        assert mono_hits / len(mono_terms) < 0.2

    def test_cross_validation_high_f1_on_entity_benchmark(self):
        """The paper's protocol: MSH-WSD-quality contexts → F ≈ 0.98."""
        from repro.corpus.mshwsd import MshWsdSimulator
        from repro.polysemy.dataset import build_entity_polysemy_dataset

        sim = MshWsdSimulator(
            n_entities=60,
            sense_distribution={1: 30, 2: 25, 3: 5},
            contexts_per_sense=24,
            contexts_mode="per_entity",
            sense_overlap=0.75,
            background_fraction=0.65,
            seed=0,
        )
        dataset = build_entity_polysemy_dataset(sim.generate())
        detector = PolysemyDetector("forest", seed=0)
        scores = detector.cross_validate_f1(dataset, n_splits=5, seed=0)
        assert scores.mean() > 0.9

    def test_cross_validation_reasonable_f1_on_corpus_scenario(self):
        """The harder realistic path: ontology + PubMed-like corpus."""
        onto, corpus = make_scenario(
            seed=7, n_concepts=60, polysemy={2: 10, 3: 3}, docs_per_concept=8
        )
        dataset = build_polysemy_dataset(onto, corpus, min_contexts=5, seed=0)
        detector = PolysemyDetector("forest", seed=0)
        n_poly = int(dataset.y.sum())
        scores = detector.cross_validate_f1(
            dataset, n_splits=min(5, n_poly), seed=0
        )
        assert scores.mean() > 0.7

    def test_classifier_instance_accepted(self):
        from repro.ml.logistic import LogisticRegression

        detector = PolysemyDetector(LogisticRegression())
        assert isinstance(detector.classifier, LogisticRegression)

    def test_custom_extractor_dimensionality(self):
        onto, corpus = make_scenario(seed=8)
        extractor = PolysemyFeatureExtractor(feature_set="direct")
        dataset = build_polysemy_dataset(
            onto, corpus, extractor=extractor, min_contexts=3, seed=0
        )
        assert dataset.X.shape[1] == 11
