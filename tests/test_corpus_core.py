"""Tests for repro.corpus.document, corpus, io."""

import pytest

from repro.corpus.corpus import Corpus, TermContext
from repro.corpus.document import Document
from repro.corpus.io import read_corpus_jsonl, write_corpus_jsonl
from repro.errors import CorpusError


class TestDocument:
    def test_from_text_tokenises_and_splits(self):
        doc = Document.from_text("d1", "Wound healed. Cornea was clear.")
        assert len(doc.sentences) == 2
        assert doc.sentences[0] == ["wound", "healed"]

    def test_tokens_flatten(self):
        doc = Document("d", [["a", "b"], ["c"]])
        assert doc.tokens() == ["a", "b", "c"]
        assert doc.n_tokens() == 3

    def test_text_reconstruction(self):
        doc = Document("d", [["wound", "heals"]])
        assert doc.text() == "wound heals."

    def test_from_text_drops_empty_sentences(self):
        doc = Document.from_text("d", "...  !!")
        assert doc.sentences == []


class TestCorpus:
    def test_unique_ids_enforced(self):
        docs = [Document("d", [["a"]]), Document("d", [["b"]])]
        with pytest.raises(CorpusError, match="duplicate"):
            Corpus(docs)
        corpus = Corpus([Document("d", [["a"]])])
        with pytest.raises(CorpusError, match="duplicate"):
            corpus.add(Document("d", [["b"]]))

    def test_container_protocol(self):
        corpus = Corpus([Document("a", [["x"]]), Document("b", [["y"]])])
        assert len(corpus) == 2
        assert corpus[0].doc_id == "a"
        assert [d.doc_id for d in corpus] == ["a", "b"]
        assert corpus.document("b").doc_id == "b"
        with pytest.raises(CorpusError):
            corpus.document("zzz")

    def test_token_counts(self):
        corpus = Corpus([Document("a", [["x", "y"], ["z"]])])
        assert corpus.n_tokens() == 3
        assert corpus.token_documents() == [["x", "y", "z"]]
        assert corpus.sentence_documents() == [["x", "y"], ["z"]]


class TestContextsForTerm:
    def make(self):
        return Corpus(
            [
                Document("d1", [["the", "corneal", "injury", "heals", "fast"]]),
                Document("d2", [["injury", "report", "filed"]]),
                Document("d3", [["no", "mention", "here"]]),
            ]
        )

    def test_single_token_term(self):
        contexts = self.make().contexts_for_term("injury", window=2)
        assert len(contexts) == 2
        docs = {c.doc_id for c in contexts}
        assert docs == {"d1", "d2"}

    def test_multiword_term(self):
        contexts = self.make().contexts_for_term("corneal injury", window=2)
        assert len(contexts) == 1
        assert contexts[0].tokens == ("the", "heals", "fast")

    def test_term_itself_excluded_from_context(self):
        contexts = self.make().contexts_for_term("injury", window=5)
        for ctx in contexts:
            assert "injury" not in ctx.tokens or ctx.doc_id == "d1"

    def test_window_clipping_at_document_edges(self):
        contexts = self.make().contexts_for_term("injury", window=50)
        d2 = [c for c in contexts if c.doc_id == "d2"][0]
        assert d2.tokens == ("report", "filed")

    def test_token_sequence_input(self):
        contexts = self.make().contexts_for_term(["Corneal", "Injury"], window=1)
        assert len(contexts) == 1

    def test_position_recorded(self):
        contexts = self.make().contexts_for_term("corneal injury", window=1)
        assert contexts[0].position == 1

    def test_overlapping_occurrences_step_over(self):
        corpus = Corpus([Document("d", [["a", "a", "a"]])])
        contexts = corpus.contexts_for_term("a a", window=1)
        assert len(contexts) == 1  # consumed pairwise, not overlapping

    def test_frequencies(self):
        corpus = self.make()
        assert corpus.term_frequency("injury") == 2
        assert corpus.document_frequency("injury") == 2
        assert corpus.term_frequency("missing") == 0

    def test_empty_term_raises(self):
        with pytest.raises(CorpusError):
            self.make().contexts_for_term("")

    def test_bad_window_raises(self):
        with pytest.raises(CorpusError):
            self.make().contexts_for_term("injury", window=0)

    def test_context_is_frozen(self):
        ctx = TermContext("d", ("a",), 0)
        with pytest.raises(AttributeError):
            ctx.doc_id = "other"


class TestCorpusIo:
    def test_jsonl_roundtrip(self, tmp_path):
        corpus = Corpus(
            [
                Document("d1", [["a", "b"]], concept_ids=["C1"], language="fr"),
                Document("d2", [["c"]]),
            ]
        )
        path = tmp_path / "corpus.jsonl"
        write_corpus_jsonl(corpus, path)
        back = read_corpus_jsonl(path)
        assert back.n_documents() == 2
        assert back.document("d1").sentences == [["a", "b"]]
        assert back.document("d1").concept_ids == ["C1"]
        assert back.document("d1").language == "fr"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"doc_id": "d1", "sentences": [["a"]]}\n\n'
        )
        corpus = read_corpus_jsonl(path)
        assert corpus.n_documents() == 1

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"doc_id": "d1", "sentences": [["a"]]}\nnot json\n')
        with pytest.raises(CorpusError, match="line 2"):
            read_corpus_jsonl(path)
