"""Tests for repro.ml.metrics, model_selection, preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NotFittedError, ValidationError
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    cross_validate,
    stratified_kfold_indices,
    train_test_split,
)
from repro.ml.preprocessing import MinMaxScaler, StandardScaler


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == 0.75

    def test_perfect_prf(self):
        p, r, f = precision_recall_f1([1, 0, 1], [1, 0, 1])
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_known_prf_values(self):
        # TP=2, FP=1, FN=1 → P=2/3, R=2/3, F=2/3
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        p, r, f = precision_recall_f1(y_true, y_pred)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f == pytest.approx(2 / 3)

    def test_zero_division_graceful(self):
        p, r, f = precision_recall_f1([0, 0], [0, 0], positive=1)
        assert (p, r, f) == (0.0, 0.0, 0.0)

    def test_macro_average(self):
        y_true = [0, 0, 1, 1, 2, 2]
        y_pred = [0, 0, 1, 1, 2, 2]
        assert f1_score(y_true, y_pred, average="macro") == 1.0

    def test_explicit_positive_label(self):
        y_true = ["a", "b", "a"]
        y_pred = ["a", "a", "a"]
        assert precision_score(y_true, y_pred, positive="a") == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred, positive="a") == 1.0

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_confusion_matrix_explicit_labels(self):
        cm = confusion_matrix([0, 1], [0, 1], labels=np.array([1, 0]))
        np.testing.assert_array_equal(cm, [[1, 0], [0, 1]])

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy_score([1, 0], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])

    def test_bad_average(self):
        with pytest.raises(ValidationError):
            precision_recall_f1([0, 1], [0, 1], average="micro")

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_f1_bounded(self, labels):
        y_true = np.array(labels)
        rng = np.random.default_rng(0)
        y_pred = rng.integers(0, 2, size=len(labels))
        f = f1_score(y_true, y_pred)
        assert 0.0 <= f <= 1.0


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.array([0] * 10 + [1] * 10)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, seed=0)
        assert X_te.shape[0] == 6
        assert X_tr.shape[0] == 14
        assert y_tr.shape[0] == 14 and y_te.shape[0] == 6

    def test_stratification_preserves_classes(self):
        X = np.zeros((30, 1))
        y = np.array([0] * 27 + [1] * 3)
        __, __, y_tr, y_te = train_test_split(X, y, test_size=0.25, seed=1)
        assert set(np.unique(y_te)) == {0, 1}
        assert set(np.unique(y_tr)) == {0, 1}

    def test_deterministic(self):
        X = np.arange(20).reshape(10, 2)
        y = np.array([0, 1] * 5)
        a = train_test_split(X, y, seed=3)
        b = train_test_split(X, y, seed=3)
        np.testing.assert_array_equal(a[1], b[1])

    def test_bad_test_size(self):
        with pytest.raises(ValidationError):
            train_test_split(np.zeros((4, 1)), np.array([0, 1, 0, 1]), test_size=0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            train_test_split(np.zeros((4, 1)), np.array([0, 1]))


class TestStratifiedKfold:
    def test_folds_partition_everything(self):
        y = np.array([0] * 20 + [1] * 10)
        folds = stratified_kfold_indices(y, n_splits=5, seed=0)
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test.tolist()) == list(range(30))

    def test_no_leakage(self):
        y = np.array([0] * 12 + [1] * 12)
        for train, test in stratified_kfold_indices(y, n_splits=4, seed=1):
            assert set(train) & set(test) == set()

    def test_each_fold_has_both_classes(self):
        y = np.array([0] * 15 + [1] * 15)
        for __, test in stratified_kfold_indices(y, n_splits=5, seed=2):
            assert set(y[test]) == {0, 1}

    def test_too_many_splits_rejected(self):
        y = np.array([0] * 10 + [1] * 3)
        with pytest.raises(ValidationError, match="smallest class"):
            stratified_kfold_indices(y, n_splits=5)

    def test_min_splits(self):
        with pytest.raises(ValidationError):
            stratified_kfold_indices(np.array([0, 1]), n_splits=1)


class TestCrossValidate:
    def test_scores_shape_and_range(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (30, 3)), rng.normal(4, 1, (30, 3))])
        y = np.array([0] * 30 + [1] * 30)
        scores = cross_validate(LogisticRegression(), X, y, n_splits=5, seed=0)
        assert scores.shape == (5,)
        assert np.all((scores >= 0) & (scores <= 1))
        assert scores.mean() > 0.9

    def test_custom_scorer(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(0, 1, (20, 2)), rng.normal(5, 1, (20, 2))])
        y = np.array([0] * 20 + [1] * 20)
        scores = cross_validate(
            KNeighborsClassifier(n_neighbors=3),
            X,
            y,
            n_splits=4,
            scorer=lambda t, p: f1_score(t, p),
            seed=0,
        )
        assert scores.mean() > 0.9


class TestScalers:
    def test_standard_scaler_moments(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_feature(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_minmax_range(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_separate_transform_consistency(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 2))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.transform(X[:5]), scaler.fit_transform(X)[:5]
        )
