"""Tests for repro.utils.tables and repro.utils.zipf."""

import numpy as np
import pytest

from repro.utils.tables import format_table
from repro.utils.zipf import zipf_sample, zipf_weights


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["k", "count"], [["2", 54257], ["3", 7770]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "54257" in lines[2]

    def test_title_rendered_first(self):
        text = format_table(["a"], [["x"]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="row has"):
            format_table(["a", "b"], [["only-one"]])

    def test_aligns_mismatch_raises(self):
        with pytest.raises(ValueError, match="aligns"):
            format_table(["a"], [["x"]], aligns=["left", "right"])

    def test_right_alignment_pads_left(self):
        text = format_table(["col"], [[7]], aligns=["right"])
        row = text.splitlines()[-1]
        assert row.endswith("7")

    def test_columns_line_up(self):
        text = format_table(["name", "n"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        pipes = [line.index("|") for line in lines if "|" in line]
        assert len(set(pipes)) == 1


class TestZipf:
    def test_weights_sum_to_one(self):
        w = zipf_weights(100)
        assert w.sum() == pytest.approx(1.0)

    def test_weights_decreasing(self):
        w = zipf_weights(50, exponent=1.2)
        assert np.all(np.diff(w) < 0)

    def test_higher_exponent_more_head_heavy(self):
        flat = zipf_weights(100, exponent=0.5)
        steep = zipf_weights(100, exponent=2.0)
        assert steep[0] > flat[0]

    def test_sample_range_and_reproducibility(self):
        a = zipf_sample(20, 100, seed=5)
        b = zipf_sample(20, 100, seed=5)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 20

    def test_sample_follows_head(self):
        sample = zipf_sample(1000, 5000, exponent=1.5, seed=0)
        # Rank-0 item should be sampled far more often than rank-500.
        counts = np.bincount(sample, minlength=1000)
        assert counts[0] > counts[500]

    def test_bad_n_raises(self):
        with pytest.raises(Exception):
            zipf_weights(0)
