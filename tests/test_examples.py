"""Smoke tests: every example must run end to end (at reduced sizes)."""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in list(sys.modules):
        if name in {
            "quickstart",
            "corneal_injuries",
            "sense_induction_demo",
            "polysemy_screening",
            "term_extraction_biotex",
            "enrich_mesh_snapshot",
            "index_reuse",
            "streaming_enrichment",
            "continuous_enrichment",
            "persistent_cache",
            "cache_service",
            "large_corpus",
            "recommend",
        }:
            del sys.modules[name]


def run_example(name: str, capsys, **kwargs) -> str:
    module = importlib.import_module(name)
    module.main(**kwargs)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys, n_concepts=15,
                          docs_per_concept=4)
        assert "Enrichment report" in out

    def test_corneal_injuries(self, capsys):
        out = run_example("corneal_injuries", capsys, docs_per_concept=8)
        assert "corneal injuries" in out
        assert "cosine" in out

    def test_sense_induction_demo(self, capsys):
        out = run_example("sense_induction_demo", capsys, n_entities=3,
                          contexts_per_sense=12)
        assert "true k" in out
        assert "sense 0" in out

    def test_polysemy_screening(self, capsys):
        out = run_example("polysemy_screening", capsys, n_entities=30)
        assert "F-measure" in out
        assert "confusion" in out.lower()

    def test_term_extraction_biotex(self, capsys):
        out = run_example("term_extraction_biotex", capsys, n_concepts=20,
                          docs_per_concept=3)
        assert "lidf_value" in out
        assert "Top 10 candidates" in out

    def test_enrich_mesh_snapshot(self, capsys):
        out = run_example("enrich_mesh_snapshot", capsys, n_concepts=40,
                          docs_per_concept=3)
        assert "2009 snapshot" in out
        assert "Top 10" in out

    def test_index_reuse(self, capsys):
        out = run_example("index_reuse", capsys, n_concepts=15,
                          docs_per_concept=4)
        assert "Indexed" in out
        assert "screening" in out
        assert "index=" in out

    def test_streaming_enrichment(self, capsys):
        out = run_example("streaming_enrichment", capsys, n_concepts=15,
                          docs_per_concept=3)
        assert "index patched in place: True" in out
        assert "re-enrich" in out

    def test_continuous_enrichment(self, capsys):
        out = run_example("continuous_enrichment", capsys, n_concepts=15,
                          docs_per_concept=3)
        assert "changed-posting terms recomputed: 0" in out
        assert "0 misses" in out
        assert "replayed diffs reconstruct the live report: True" in out

    def test_persistent_cache(self, capsys):
        out = run_example("persistent_cache", capsys, n_concepts=15,
                          docs_per_concept=4)
        assert "identical reports: True" in out
        assert "vectors served from disk" in out

    def test_large_corpus(self, capsys):
        out = run_example("large_corpus", capsys, n_concepts=15,
                          docs_per_concept=4)
        assert "mmap reopen" in out
        assert "worker payload" in out
        assert "identical reports: True" in out

    def test_cache_service(self, capsys):
        out = run_example("cache_service", capsys, n_concepts=15,
                          docs_per_concept=4)
        assert "vectors served over HTTP" in out
        assert "degraded to misses" in out
        assert "served deployment round trip OK" in out

    def test_recommend(self, capsys):
        out = run_example("recommend", capsys, n_concepts=15,
                          docs_per_concept=3)
        assert "winner: full" in out
        assert "full ontology wins on detail+specialization: True" in out
        assert "flat adds no coverage: True" in out
