"""RemoteCacheStore failure modes: every network fault is a clean miss.

The contract under test (see :mod:`repro.service.client`): the pipeline
must never block on — or crash because of — the cache service.  Server
down, a mid-response disconnect, a malformed payload, and a timeout all
make ``get`` return None (and ``put`` drop silently), increment
``remote_errors``, and raise nothing.  Fault injection uses raw
listening sockets speaking just enough HTTP to misbehave on purpose.
"""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.polysemy.cache import FeatureCache
from repro.service.client import RemoteCacheStore
from repro.service.wire import (
    KEY_BATCH_MAGIC,
    MAX_BATCH_ITEMS,
    VECTOR_BATCH_MAGIC,
    encode_vector,
    encode_vector_batch,
)


def key(term="heart attack"):
    return FeatureCache.key("corpus-fp", term, "config-fp")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class FaultyServer:
    """A one-connection-at-a-time server with a scripted response.

    ``respond(connection, request_head)`` decides the fault (the head
    lets path-sensitive scripts answer the batch route and its per-key
    fallback differently); the server accepts connections until closed,
    so clients that retry on a fresh connection still hit the same
    behaviour.
    """

    def __init__(self, respond) -> None:
        self._respond = respond
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self._listener.getsockname()[1]}"

    def _serve(self) -> None:
        while not self._closing:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            try:
                # Read the request head so the client finishes sending.
                connection.settimeout(2.0)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = connection.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                self._respond(connection, data)
            except OSError:
                pass
            finally:
                try:
                    connection.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)


def assert_clean_miss(store: RemoteCacheStore, *, errors_at_least=1):
    """get() misses, put() swallows, counters record the failures."""
    assert store.get(key()) is None
    store.put(key(), np.arange(4.0))  # must not raise either
    stats = store.stats()
    assert stats["remote_hits"] == 0
    assert stats["remote_errors"] >= errors_at_least
    return stats


class TestServerDown:
    def test_connection_refused_counts_errors_per_operation(self):
        port = free_port()  # bound then released: nothing listens here
        store = RemoteCacheStore(f"http://127.0.0.1:{port}", timeout=0.5)
        stats = assert_clean_miss(store)
        # One error for the get, one for the put — nothing sticky.
        assert stats["remote_errors"] == 2
        assert len(store) == 0  # stats polling fails soft too

    def test_feature_cache_over_a_dead_service_counts_misses(self):
        port = free_port()
        cache = FeatureCache(
            store=RemoteCacheStore(f"http://127.0.0.1:{port}", timeout=0.5)
        )
        assert cache.lookup(key()) is None
        cache.store(key(), np.arange(3.0))
        stats = cache.stats
        assert stats["misses"] == 1
        assert stats["hits"] == 0
        assert stats["remote_errors"] >= 2


class TestMidResponseDisconnect:
    def test_truncated_body_is_a_miss(self):
        headers, body = encode_vector(np.arange(32.0))

        def respond(connection, request_head):
            head = (
                "HTTP/1.1 200 OK\r\n"
                f"X-Repro-Dtype: {headers['X-Repro-Dtype']}\r\n"
                f"X-Repro-Shape: {headers['X-Repro-Shape']}\r\n"
                f"X-Repro-Crc: {headers['X-Repro-Crc']}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            )
            # Promise the full vector, deliver a fragment, vanish.
            connection.sendall(head.encode() + body[: len(body) // 3])

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0)
            assert_clean_miss(store)
        finally:
            server.close()

    def test_disconnect_before_any_response(self):
        def respond(connection, request_head):
            pass  # close immediately after reading the request

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0)
            assert_clean_miss(store)
        finally:
            server.close()


class TestMalformedPayload:
    @staticmethod
    def _serve_response(raw: bytes):
        def respond(connection, request_head):
            connection.sendall(raw)

        return FaultyServer(respond)

    def test_wrong_crc_is_a_miss(self):
        headers, body = encode_vector(np.arange(8.0))
        raw = (
            "HTTP/1.1 200 OK\r\n"
            f"X-Repro-Dtype: {headers['X-Repro-Dtype']}\r\n"
            f"X-Repro-Shape: {headers['X-Repro-Shape']}\r\n"
            "X-Repro-Crc: 1\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        server = self._serve_response(raw)
        try:
            assert_clean_miss(RemoteCacheStore(server.url, timeout=1.0))
        finally:
            server.close()

    def test_missing_vector_headers_is_a_miss(self):
        body = b"\x00" * 24
        raw = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        server = self._serve_response(raw)
        try:
            assert_clean_miss(RemoteCacheStore(server.url, timeout=1.0))
        finally:
            server.close()

    def test_garbage_bytes_are_a_miss(self):
        server = self._serve_response(b"NOT HTTP AT ALL\r\n\r\n")
        try:
            assert_clean_miss(RemoteCacheStore(server.url, timeout=1.0))
        finally:
            server.close()


class TestTimeout:
    def test_stalled_server_is_a_miss_within_the_timeout(self):
        stall = threading.Event()

        def respond(connection, request_head):
            stall.wait(5.0)  # hold the response hostage past the timeout

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=0.3)
            assert store.get(key()) is None
            assert store.stats()["remote_errors"] == 1
        finally:
            stall.set()
            server.close()


def batch_keys(n=6):
    return [key(f"term-{i}") for i in range(n)]


def assert_batch_clean_miss(store, *, keys_requested=6, errors_at_least=1):
    """get_many misses every key, put_many swallows, errors counted."""
    assert store.get_many(batch_keys(keys_requested)) == {}
    store.put_many(
        [(k, np.arange(4.0)) for k in batch_keys(keys_requested)]
    )  # must not raise either
    stats = store.stats()
    assert stats["remote_hits"] == 0
    assert stats["remote_errors"] >= errors_at_least
    return stats


class TestBatchRouteFaults:
    """The batch protocol under fire: every fault degrades to per-key
    clean misses and bumps ``remote_errors`` — one count per failed
    round trip, never a crash or a half-applied batch."""

    def test_mid_batch_disconnect_is_clean_misses(self):
        frame = encode_vector_batch(
            [(k, np.arange(8.0)) for k in batch_keys()]
        )

        def respond(connection, request_head):
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/octet-stream\r\n"
                f"Content-Length: {len(frame)}\r\n\r\n"
            )
            # Promise a full vector frame, deliver a third, vanish.
            connection.sendall(head.encode() + frame[: len(frame) // 3])

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0, batch_size=4)
            # 6 keys in chunks of 4: one failed round trip per chunk.
            stats = assert_batch_clean_miss(store, errors_at_least=2)
            assert stats["remote_errors"] == 4  # 2 get chunks + 2 put
        finally:
            server.close()

    def test_truncated_frame_inside_a_complete_body_is_clean_misses(self):
        # The HTTP body arrives whole, but the frame inside lies about
        # its lengths — the all-or-nothing decoder must reject it.
        frame = encode_vector_batch(
            [(k, np.arange(8.0)) for k in batch_keys()]
        )
        torn = frame[: len(frame) - 7]

        def respond(connection, request_head):
            head = (
                "HTTP/1.1 200 OK\r\n"
                f"Content-Length: {len(torn)}\r\n\r\n"
            )
            connection.sendall(head.encode() + torn)

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0, batch_size=8)
            assert_batch_clean_miss(store)
        finally:
            server.close()

    def test_oversized_frame_from_server_is_clean_misses(self):
        # A frame declaring more entries than MAX_BATCH_ITEMS must be
        # rejected before any allocation is sized from it.
        bogus = VECTOR_BATCH_MAGIC + struct.pack(
            "<I", MAX_BATCH_ITEMS + 1
        )

        def respond(connection, request_head):
            head = (
                "HTTP/1.1 200 OK\r\n"
                f"Content-Length: {len(bogus)}\r\n\r\n"
            )
            connection.sendall(head.encode() + bogus)

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0, batch_size=4)
            assert_batch_clean_miss(store)
        finally:
            server.close()

    def test_server_rejects_oversized_frames_with_400(self, tmp_path):
        from repro.polysemy.cache_store import DiskCacheStore
        from repro.service.server import CacheServiceServer

        server = CacheServiceServer(DiskCacheStore(tmp_path), port=0)
        server.start()
        try:
            import http.client

            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=5.0
            )
            for method, magic in (
                ("POST", KEY_BATCH_MAGIC),
                ("PUT", VECTOR_BATCH_MAGIC),
            ):
                bogus = magic + struct.pack("<I", MAX_BATCH_ITEMS + 1)
                connection.request(
                    method, "/vectors/batch", body=bogus,
                    headers={"Content-Type": "application/octet-stream"},
                )
                response = connection.getresponse()
                body = response.read()
                assert response.status == 400
                assert b"malformed" in body
            # The rejection stored nothing.
            assert len(server.service.store) == 0
            connection.close()
        finally:
            server.stop()

    def test_duplicate_keys_in_one_batch(self, tmp_path):
        """Duplicates are legal: the response answers every occurrence,
        duplicate PUTs resolve last-wins, and nothing double-counts
        into an error."""
        from repro.polysemy.cache_store import DiskCacheStore
        from repro.service.server import CacheServiceServer

        server = CacheServiceServer(DiskCacheStore(tmp_path), port=0)
        server.start()
        try:
            store = RemoteCacheStore(server.url, timeout=5.0, batch_size=8)
            duplicated = key("dup")
            store.put_many(
                [
                    (duplicated, np.zeros(3)),
                    (key("other"), np.full(3, 7.0)),
                    (duplicated, np.ones(3)),  # last wins
                ]
            )
            found = store.get_many([duplicated, key("other"), duplicated])
            np.testing.assert_array_equal(found[duplicated], np.ones(3))
            np.testing.assert_array_equal(
                found[key("other")], np.full(3, 7.0)
            )
            assert store.stats()["remote_errors"] == 0
        finally:
            server.stop()

    def test_duplicate_keys_in_a_scripted_response_frame(self):
        # A confused server answering the same key twice must not
        # crash the client; the later entry wins, no error counted.
        frame = encode_vector_batch(
            [(key("dup"), np.zeros(2)), (key("dup"), np.ones(2))]
        )

        def respond(connection, request_head):
            head = (
                "HTTP/1.1 200 OK\r\n"
                f"Content-Length: {len(frame)}\r\n\r\n"
            )
            connection.sendall(head.encode() + frame)

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0, batch_size=8)
            found = store.get_many([key("dup")])
            np.testing.assert_array_equal(found[key("dup")], np.ones(2))
            assert store.stats()["remote_errors"] == 0
        finally:
            server.close()

    def test_pre_batch_server_flips_to_per_key_fallback(self):
        """An unmarked 404 on the batch route means an old deployment:
        the store falls back to per-key requests — transparently, and
        without counting the probe as a failure."""
        batch_probes = []

        def respond(connection, request_head):
            request_line = request_head.split(b"\r\n", 1)[0]
            if b"/vectors/batch" in request_line:
                batch_probes.append(request_line)
                payload = b'{"error": "not found"}'
                head = (
                    "HTTP/1.1 404 Not Found\r\n"  # no X-Repro-Miss
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                )
                connection.sendall(head.encode() + payload)
            elif b"PUT /cache/vector" in request_line:
                connection.sendall(
                    b"HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n"
                )
            else:  # per-key GET: an honest marked miss
                payload = b'{"error": "miss"}'
                head = (
                    "HTTP/1.1 404 Not Found\r\n"
                    "X-Repro-Miss: 1\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                )
                connection.sendall(head.encode() + payload)

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0, batch_size=4)
            assert store.get_many(batch_keys(3)) == {}
            store.put_many([(k, np.arange(2.0)) for k in batch_keys(3)])
            # Old-server probes are a deployment state, not a failure.
            assert store.stats()["remote_errors"] == 0
            # The flip is remembered: later bulk calls go straight to
            # per-key requests without re-probing the batch route.
            assert store.get_many(batch_keys(2)) == {}
            assert len(batch_probes) == 1
        finally:
            server.close()


class TestChannelTeardown:
    """The channel's close path swallows exactly socket-layer errors."""

    class _Conn:
        def __init__(self, exc=None):
            self.exc = exc
            self.closed = False

        def close(self):
            self.closed = True
            if self.exc is not None:
                raise self.exc

    def _channel(self, conn):
        store = RemoteCacheStore("http://127.0.0.1:1")
        channel = store._channel
        channel._conn = conn
        return channel

    def test_oserror_on_close_is_swallowed_and_conn_cleared(self):
        conn = self._Conn(ConnectionResetError("peer gone"))
        channel = self._channel(conn)
        channel.close()  # must not raise
        assert conn.closed
        assert channel._conn is None

    def test_non_oserror_on_close_propagates(self):
        # The handler is deliberately narrow: a non-socket failure in
        # close() is a programming error and must surface.
        channel = self._channel(self._Conn(RuntimeError("bug")))
        with pytest.raises(RuntimeError):
            channel.close()


class TestRecovery:
    def test_errors_do_not_poison_later_requests(self, tmp_path):
        """A store that failed against a dead port works once pointed at
        a live server — the connection is rebuilt transparently."""
        from repro.polysemy.cache_store import DiskCacheStore
        from repro.service.server import CacheServiceServer

        server = CacheServiceServer(DiskCacheStore(tmp_path), port=0)
        server.start()
        try:
            store = RemoteCacheStore(server.url, timeout=2.0)
            vec = np.arange(6.0)
            store.put(key(), vec)
            np.testing.assert_array_equal(store.get(key()), vec)
            # Sever the server-side socket; the next call fails, the one
            # after that reconnects and succeeds.
            server._httpd.close_connections()
            np.testing.assert_array_equal(store.get(key()), vec)
            assert store.stats()["remote_hits"] == 2
        finally:
            server.stop()
