"""RemoteCacheStore failure modes: every network fault is a clean miss.

The contract under test (see :mod:`repro.service.client`): the pipeline
must never block on — or crash because of — the cache service.  Server
down, a mid-response disconnect, a malformed payload, and a timeout all
make ``get`` return None (and ``put`` drop silently), increment
``remote_errors``, and raise nothing.  Fault injection uses raw
listening sockets speaking just enough HTTP to misbehave on purpose.
"""

import socket
import threading

import numpy as np
import pytest

from repro.polysemy.cache import FeatureCache
from repro.service.client import RemoteCacheStore
from repro.service.wire import encode_vector


def key(term="heart attack"):
    return FeatureCache.key("corpus-fp", term, "config-fp")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class FaultyServer:
    """A one-connection-at-a-time server with a scripted response.

    ``respond(connection)`` decides the fault; the server accepts
    connections until closed, so clients that retry on a fresh
    connection still hit the same behaviour.
    """

    def __init__(self, respond) -> None:
        self._respond = respond
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self._listener.getsockname()[1]}"

    def _serve(self) -> None:
        while not self._closing:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            try:
                # Read the request head so the client finishes sending.
                connection.settimeout(2.0)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = connection.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                self._respond(connection)
            except OSError:
                pass
            finally:
                try:
                    connection.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)


def assert_clean_miss(store: RemoteCacheStore, *, errors_at_least=1):
    """get() misses, put() swallows, counters record the failures."""
    assert store.get(key()) is None
    store.put(key(), np.arange(4.0))  # must not raise either
    stats = store.stats()
    assert stats["remote_hits"] == 0
    assert stats["remote_errors"] >= errors_at_least
    return stats


class TestServerDown:
    def test_connection_refused_counts_errors_per_operation(self):
        port = free_port()  # bound then released: nothing listens here
        store = RemoteCacheStore(f"http://127.0.0.1:{port}", timeout=0.5)
        stats = assert_clean_miss(store)
        # One error for the get, one for the put — nothing sticky.
        assert stats["remote_errors"] == 2
        assert len(store) == 0  # stats polling fails soft too

    def test_feature_cache_over_a_dead_service_counts_misses(self):
        port = free_port()
        cache = FeatureCache(
            store=RemoteCacheStore(f"http://127.0.0.1:{port}", timeout=0.5)
        )
        assert cache.lookup(key()) is None
        cache.store(key(), np.arange(3.0))
        stats = cache.stats
        assert stats["misses"] == 1
        assert stats["hits"] == 0
        assert stats["remote_errors"] >= 2


class TestMidResponseDisconnect:
    def test_truncated_body_is_a_miss(self):
        headers, body = encode_vector(np.arange(32.0))

        def respond(connection):
            head = (
                "HTTP/1.1 200 OK\r\n"
                f"X-Repro-Dtype: {headers['X-Repro-Dtype']}\r\n"
                f"X-Repro-Shape: {headers['X-Repro-Shape']}\r\n"
                f"X-Repro-Crc: {headers['X-Repro-Crc']}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            )
            # Promise the full vector, deliver a fragment, vanish.
            connection.sendall(head.encode() + body[: len(body) // 3])

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0)
            assert_clean_miss(store)
        finally:
            server.close()

    def test_disconnect_before_any_response(self):
        def respond(connection):
            pass  # close immediately after reading the request

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=1.0)
            assert_clean_miss(store)
        finally:
            server.close()


class TestMalformedPayload:
    @staticmethod
    def _serve_response(raw: bytes):
        def respond(connection):
            connection.sendall(raw)

        return FaultyServer(respond)

    def test_wrong_crc_is_a_miss(self):
        headers, body = encode_vector(np.arange(8.0))
        raw = (
            "HTTP/1.1 200 OK\r\n"
            f"X-Repro-Dtype: {headers['X-Repro-Dtype']}\r\n"
            f"X-Repro-Shape: {headers['X-Repro-Shape']}\r\n"
            "X-Repro-Crc: 1\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        server = self._serve_response(raw)
        try:
            assert_clean_miss(RemoteCacheStore(server.url, timeout=1.0))
        finally:
            server.close()

    def test_missing_vector_headers_is_a_miss(self):
        body = b"\x00" * 24
        raw = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        server = self._serve_response(raw)
        try:
            assert_clean_miss(RemoteCacheStore(server.url, timeout=1.0))
        finally:
            server.close()

    def test_garbage_bytes_are_a_miss(self):
        server = self._serve_response(b"NOT HTTP AT ALL\r\n\r\n")
        try:
            assert_clean_miss(RemoteCacheStore(server.url, timeout=1.0))
        finally:
            server.close()


class TestTimeout:
    def test_stalled_server_is_a_miss_within_the_timeout(self):
        stall = threading.Event()

        def respond(connection):
            stall.wait(5.0)  # hold the response hostage past the timeout

        server = FaultyServer(respond)
        try:
            store = RemoteCacheStore(server.url, timeout=0.3)
            assert store.get(key()) is None
            assert store.stats()["remote_errors"] == 1
        finally:
            stall.set()
            server.close()


class TestRecovery:
    def test_errors_do_not_poison_later_requests(self, tmp_path):
        """A store that failed against a dead port works once pointed at
        a live server — the connection is rebuilt transparently."""
        from repro.polysemy.cache_store import DiskCacheStore
        from repro.service.server import CacheServiceServer

        server = CacheServiceServer(DiskCacheStore(tmp_path), port=0)
        server.start()
        try:
            store = RemoteCacheStore(server.url, timeout=2.0)
            vec = np.arange(6.0)
            store.put(key(), vec)
            np.testing.assert_array_equal(store.get(key()), vec)
            # Sever the server-side socket; the next call fails, the one
            # after that reconnects and succeeds.
            server._httpd.close_connections()
            np.testing.assert_array_equal(store.get(key()), vec)
            assert store.stats()["remote_hits"] == 2
        finally:
            server.stop()
