"""Tests for repro.utils.validation."""

import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_fraction,
    check_in_options,
    check_positive,
    check_positive_int,
)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(2.5, "x") == 2.5

    def test_accepts_positive_int(self):
        assert check_positive(3, "x") == 3.0

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="x must be > 0"):
            check_positive(bad, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError, match="must be a number"):
            check_positive("3", "x")


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(7, "k") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "k")

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="must be an int"):
            check_positive_int(2.0, "k")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "k")


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, "p") == 0.0
        assert check_fraction(1.0, "p") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValidationError):
            check_fraction(0.0, "p", inclusive=False)
        with pytest.raises(ValidationError):
            check_fraction(1.0, "p", inclusive=False)
        assert check_fraction(0.5, "p", inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_fraction(1.5, "p")


class TestCheckInOptions:
    def test_accepts_member(self):
        assert check_in_options("en", "language", ("en", "fr")) == "en"

    def test_rejects_non_member(self):
        with pytest.raises(ValidationError, match="language must be one of"):
            check_in_options("de", "language", ("en", "fr"))
