"""Tests for repro.clustering.external (purity, Rand, ARI, NMI)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.external import (
    EXTERNAL_INDEXES,
    adjusted_rand_index,
    compute_external_index,
    contingency_table,
    normalized_mutual_information,
    purity,
    rand_index,
)
from repro.errors import ClusteringError

PERFECT = (np.array([0, 0, 1, 1]), np.array([5, 5, 9, 9]))
RANDOMISH = (np.array([0, 1, 0, 1]), np.array([0, 0, 1, 1]))


class TestContingency:
    def test_counts(self):
        table = contingency_table([0, 0, 1], ["a", "b", "b"])
        np.testing.assert_array_equal(table, [[1, 1], [0, 1]])

    def test_misaligned_raises(self):
        with pytest.raises(ClusteringError):
            contingency_table([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(ClusteringError):
            contingency_table([], [])


class TestPurity:
    def test_perfect(self):
        assert purity(*PERFECT) == 1.0

    def test_merged_clusters(self):
        assert purity([0, 0, 0, 0], [0, 0, 1, 1]) == 0.5

    def test_singletons_always_pure(self):
        assert purity([0, 1, 2, 3], [0, 0, 1, 1]) == 1.0


class TestRand:
    def test_perfect(self):
        assert rand_index(*PERFECT) == 1.0

    def test_label_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2])
        b = np.array([2, 2, 0, 0, 1])
        assert rand_index(a, b) == 1.0

    def test_known_value(self):
        # pairs: (0,1) agree-same, (2,3) agree-diff... compute directly
        value = rand_index([0, 0, 1, 1], [0, 1, 0, 1])
        assert value == pytest.approx(1 / 3)


class TestAri:
    def test_perfect(self):
        assert adjusted_rand_index(*PERFECT) == pytest.approx(1.0)

    def test_random_near_zero(self):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 3, size=300)
        true = rng.integers(0, 3, size=300)
        assert abs(adjusted_rand_index(pred, true)) < 0.1

    def test_worse_than_chance_negative(self):
        # systematic disagreement on balanced data
        pred = np.array([0, 1] * 10)
        true = np.array([0, 0, 1, 1] * 5)
        assert adjusted_rand_index(pred, true) <= 0.05


class TestNmi:
    def test_perfect(self):
        assert normalized_mutual_information(*PERFECT) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        pred = rng.integers(0, 4, size=500)
        true = rng.integers(0, 4, size=500)
        assert normalized_mutual_information(pred, true) < 0.1

    def test_single_cluster_each(self):
        assert normalized_mutual_information([0, 0], [1, 1]) == 1.0

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_bounded(self, labels):
        pred = np.array(labels)
        rng = np.random.default_rng(7)
        true = rng.integers(0, 3, size=len(labels))
        value = normalized_mutual_information(pred, true)
        assert 0.0 <= value <= 1.0


class TestDispatch:
    def test_all_names(self):
        for name in EXTERNAL_INDEXES:
            value = compute_external_index(name, *PERFECT)
            assert value == pytest.approx(1.0)

    def test_unknown(self):
        with pytest.raises(ClusteringError):
            compute_external_index("f1", *PERFECT)


class TestSubstrateValidation:
    def test_algorithms_recover_gold_senses(self):
        """External indexes confirm the clustering substrate works on
        simulated MSH-WSD entities — independent of any internal index."""
        from repro.clustering.algorithms import cluster
        from repro.corpus.mshwsd import MshWsdSimulator
        from repro.senses.representation import bow_representation

        entity = MshWsdSimulator(
            n_entities=1, sense_distribution={3: 1}, contexts_per_sense=15,
            sense_overlap=0.1, background_fraction=0.4, seed=3,
        ).generate()[0]
        matrix = bow_representation(entity.contexts)
        solution = cluster(matrix, 3, method="rbr", seed=0)
        ari = adjusted_rand_index(solution.labels, np.array(entity.labels))
        assert ari > 0.8
