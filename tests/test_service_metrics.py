"""The observability layer: instruments, /metrics, ETag'd /stats,
idempotent job submission.

The instrument-level tests pin the Prometheus semantics (inclusive
``le`` bucket boundaries, cumulative rendering, monotone counters under
real thread contention); the served tests scrape a live
:class:`~repro.service.server.CacheServiceServer` and check the
exposition parses as text format 0.0.4 with internally consistent
histograms.
"""

import json
import re
import threading

import numpy as np
import pytest

from repro.corpus.io import write_corpus_jsonl
from repro.errors import ValidationError
from repro.ontology.io import write_ontology_json
from repro.polysemy.cache_store import DiskCacheStore
from repro.scenarios import make_enrichment_scenario
from repro.service.client import RemoteCacheStore, ServiceClient, ServiceError
from repro.service.jobs import IdempotencyConflictError, JobManager
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from repro.service.server import CacheServiceServer


@pytest.fixture()
def server(tmp_path):
    instance = CacheServiceServer(
        DiskCacheStore(tmp_path / "cache"), host="127.0.0.1", port=0
    )
    instance.start()
    yield instance
    instance.stop()


class TestHistogram:
    def test_boundary_values_are_inclusive(self):
        h = Histogram("h_seconds", "t", buckets=(0.1, 1.0, 5.0))
        h.observe(0.1)   # exactly on a boundary: le="0.1" bucket
        h.observe(0.05)  # below the first boundary
        h.observe(1.0)   # exactly on the second boundary
        h.observe(3.0)
        h.observe(100.0)  # beyond every boundary: +Inf only
        cumulative, total_sum, count = h.snapshot()
        assert cumulative == [2, 3, 4, 5]  # le=0.1, 1.0, 5.0, +Inf
        assert count == 5
        assert total_sum == pytest.approx(104.15)

    def test_rendering_is_cumulative_with_inf_and_count(self):
        h = Histogram("h_seconds", "t", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        lines = h.samples()
        assert 'h_seconds_bucket{le="1"} 1' in lines
        assert 'h_seconds_bucket{le="2"} 2' in lines
        assert 'h_seconds_bucket{le="+Inf"} 2' in lines
        assert "h_seconds_count 2" in lines

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "t", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "t", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "t", buckets=())


class TestCounter:
    def test_rejects_negative_increments(self):
        c = Counter("c_total", "t")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_rejects_mismatched_labels(self):
        c = Counter("c_total", "t", ("op",))
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(kind="x")

    def test_monotone_and_exact_under_thread_contention(self):
        c = Counter("c_total", "t", ("op",))
        per_thread, threads = 2000, 8

        def hammer():
            for _ in range(per_thread):
                c.inc(op="x")

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        observed = 0
        while any(t.is_alive() for t in pool):
            value = c.value(op="x")
            assert value >= observed  # a scrape never goes backwards
            observed = value
        for t in pool:
            t.join()
        assert c.value(op="x") == per_thread * threads  # nothing lost

    def test_registry_rejects_duplicate_names(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "t")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c_total", "t")


class TestGauge:
    def test_inc_dec_set(self):
        g = Gauge("g", "t")
        g.inc()
        g.inc()
        g.dec()
        assert g.value() == 1.0
        g.set(42.0)
        assert g.value() == 42.0


#: One sample line of the text exposition: name, optional {labels},
#: and a value ('+Inf'/float).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? "
    r"(?P<value>[-+0-9.eE]+|\+Inf|NaN)$"
)


def parse_exposition(text: str) -> dict[str, dict]:
    """Strictly parse Prometheus text format 0.0.4 (fails the test on
    any malformed line)."""
    metrics: dict[str, dict] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            metrics.setdefault(name, {"samples": {}})["help"] = True
        elif line.startswith("# TYPE "):
            __, __, name, kind = line.split(" ", 3)
            metrics.setdefault(name, {"samples": {}})["type"] = kind
        else:
            match = _SAMPLE_RE.match(line)
            assert match, f"malformed sample line: {line!r}"
            base = re.sub(r"_(bucket|sum|count)$", "", match["name"])
            owner = metrics.get(base) or metrics.get(match["name"])
            assert owner is not None, f"sample without TYPE: {line!r}"
            owner["samples"][(match["name"], match["labels"] or "")] = float(
                match["value"]
            )
    return metrics


class TestMetricsEndpoint:
    def test_scrape_parses_and_histograms_are_consistent(self, server):
        store = RemoteCacheStore(server.url, batch_size=8)
        store.put(("fp", "term", "cfg"), np.arange(4.0))
        store.get(("fp", "term", "cfg"))
        store.get_many([("fp", f"t{i}", "cfg") for i in range(20)])
        client = ServiceClient(server.url)
        client.healthz()
        text = client.metrics()
        metrics = parse_exposition(text)
        for name in (
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_http_inflight_requests",
            "repro_cache_requests_total",
            "repro_batch_vectors_total",
        ):
            assert metrics[name].get("help") and metrics[name].get("type")
        # Histogram internal consistency: cumulative buckets are
        # monotone and the +Inf bucket equals _count, per route.
        hist = metrics["repro_http_request_seconds"]["samples"]
        routes = {
            labels for name, labels in hist if name.endswith("_count")
        }
        assert routes  # at least the routes hit above
        for route_labels in routes:
            count = hist[("repro_http_request_seconds_count", route_labels)]
            route = route_labels[1:-1]  # strip {}
            buckets = [
                value
                for (name, labels), value in sorted(hist.items())
                if name.endswith("_bucket") and route in labels
            ]
            # Cumulative buckets peak at the +Inf bucket == _count.
            assert buckets
            assert max(buckets) == count
        # The traffic above actually landed where it should.
        counters = metrics["repro_cache_requests_total"]["samples"]
        get_total = sum(
            value
            for (name, labels), value in counters.items()
            if 'op="batch_get"' in labels
        )
        assert get_total == 20
        assert (
            metrics["repro_batch_vectors_total"]["samples"][
                ("repro_batch_vectors_total", '{op="get"}')
            ]
            == 20
        )

    def test_counters_exact_under_concurrent_http_clients(self, server):
        threads, per_thread = 6, 10

        def hammer():
            client = ServiceClient(server.url)
            for _ in range(per_thread):
                client.healthz()
            client.close()

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        metrics = parse_exposition(ServiceClient(server.url).metrics())
        samples = metrics["repro_http_requests_total"]["samples"]
        healthz = sum(
            value
            for (name, labels), value in samples.items()
            if '"/healthz"' in labels
        )
        assert healthz == threads * per_thread
        # Every client returned, so the only request in flight is the
        # /metrics scrape observing itself.
        inflight = metrics["repro_http_inflight_requests"]["samples"]
        assert inflight[("repro_http_inflight_requests", "")] == 1


class TestStatsConditional:
    def test_second_poll_is_304_and_traffic_busts_the_etag(self, server):
        client = ServiceClient(server.url)
        document, etag = client.stats_conditional()
        assert document is not None and etag
        # No traffic in between: the poller gets a 304, no body.
        repoll, etag2 = client.stats_conditional(etag)
        assert repoll is None
        assert etag2 == etag
        # Counted traffic changes the document, so the ETag must move.
        store = RemoteCacheStore(server.url)
        store.put(("fp", "term", "cfg"), np.arange(3.0))
        after, etag3 = client.stats_conditional(etag)
        assert after is not None
        assert etag3 != etag
        assert after["vector_puts"] == document["vector_puts"] + 1

    def test_stats_polls_do_not_change_stats(self, server):
        client = ServiceClient(server.url)
        first = client.stats()
        for _ in range(3):
            client.stats()
        assert client.stats()["requests"] == first["requests"]


class TestIdempotentJobs:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        scenario = make_enrichment_scenario(
            seed=1, n_concepts=16, docs_per_concept=4
        )
        root = tmp_path_factory.mktemp("idem-corpus")
        write_ontology_json(scenario.ontology, root / "ontology.json")
        write_corpus_jsonl(scenario.corpus, root / "corpus.jsonl")
        return root

    @pytest.fixture()
    def job_server(self, tmp_path, corpus_dir):
        instance = CacheServiceServer(
            DiskCacheStore(tmp_path / "cache"),
            port=0,
            corpora={
                "demo": (
                    corpus_dir / "ontology.json",
                    corpus_dir / "corpus.jsonl",
                )
            },
        )
        instance.start()
        yield instance
        instance.stop()

    def test_resubmission_returns_the_same_job_id(self, job_server):
        client = ServiceClient(job_server.url)
        first, replayed = client.submit_job_detailed(
            "demo", config={"n_candidates": 2}, idempotency_key="retry-1"
        )
        assert not replayed
        second, replayed = client.submit_job_detailed(
            "demo", config={"n_candidates": 2}, idempotency_key="retry-1"
        )
        assert replayed
        assert second == first
        # The replay created no second job.
        jobs = [doc["job"] for doc in client._json("GET", "/jobs")["jobs"]]
        assert jobs.count(first) == 1
        # Without a key every submit is a fresh job.
        third = client.submit_job("demo", config={"n_candidates": 2})
        assert third != first

    def test_key_reuse_with_different_payload_is_409(self, job_server):
        client = ServiceClient(job_server.url)
        client.submit_job(
            "demo", config={"n_candidates": 2}, idempotency_key="retry-2"
        )
        with pytest.raises(ServiceError, match="409"):
            client.submit_job(
                "demo", config={"n_candidates": 3}, idempotency_key="retry-2"
            )

    def test_manager_level_replay_and_conflict(self, corpus_dir):
        manager = JobManager(
            {
                "demo": (
                    corpus_dir / "ontology.json",
                    corpus_dir / "corpus.jsonl",
                )
            },
            metrics=ServiceMetrics(),
        )
        try:
            first, replayed = manager.submit_detailed(
                "demo", {"n_candidates": 2}, idempotency_key="k"
            )
            assert not replayed
            again, replayed = manager.submit_detailed(
                "demo", {"n_candidates": 2}, idempotency_key="k"
            )
            assert replayed and again == first
            with pytest.raises(IdempotencyConflictError):
                manager.submit_detailed(
                    "demo", {"n_candidates": 3}, idempotency_key="k"
                )
            with pytest.raises(ValidationError, match="non-empty"):
                manager.submit_detailed("demo", idempotency_key="")
            with pytest.raises(ValidationError, match="exceeds"):
                manager.submit_detailed("demo", idempotency_key="x" * 201)
            document = manager.job(first)
            assert document["idempotency_key"] == "k"
        finally:
            manager.shutdown(wait=True)

    def test_pruned_jobs_retire_their_idempotency_keys(self, corpus_dir):
        manager = JobManager(
            {
                "demo": (
                    corpus_dir / "ontology.json",
                    corpus_dir / "corpus.jsonl",
                )
            },
            max_finished_jobs=1,
        )
        try:
            ids = [
                manager.submit(
                    "demo", {"n_candidates": 2}, idempotency_key=f"key-{i}"
                )
                for i in range(3)
            ]
            deadline = 180.0
            import time as _time

            start = _time.time()
            while _time.time() - start < deadline:
                documents = [manager.job(job_id) for job_id in ids]
                if all(
                    doc is None or doc["status"] in ("done", "failed")
                    for doc in documents
                ):
                    break
                _time.sleep(0.1)
            # Force pruning past the retention cap of 1.
            manager.submit("demo", {"n_candidates": 2})
            alive = [job_id for job_id in ids if manager.job(job_id)]
            assert len(alive) < len(ids)
            dropped = next(
                job_id for job_id in ids if manager.job(job_id) is None
            )
            index = ids.index(dropped)
            # The dropped job's key mints a *fresh* job (no dangling
            # replay to a 404), while a retained key still replays.
            fresh, replayed = manager.submit_detailed(
                "demo", {"n_candidates": 2}, idempotency_key=f"key-{index}"
            )
            assert not replayed
            assert fresh != dropped
        finally:
            manager.shutdown(wait=True)

    def test_job_metrics_record_submission_and_completion(self, corpus_dir):
        metrics = ServiceMetrics()
        manager = JobManager(
            {
                "demo": (
                    corpus_dir / "ontology.json",
                    corpus_dir / "corpus.jsonl",
                )
            },
            metrics=metrics,
        )
        try:
            job_id = manager.submit(
                "demo", {"n_candidates": 2}, idempotency_key="m"
            )
            manager.submit(
                "demo", {"n_candidates": 2}, idempotency_key="m"
            )
            import time as _time

            start = _time.time()
            while _time.time() - start < 180:
                document = manager.job(job_id)
                if document["status"] in ("done", "failed"):
                    break
                _time.sleep(0.1)
            assert manager.job(job_id)["status"] == "done"
            assert metrics.jobs.value(corpus="demo", status="submitted") == 1
            assert metrics.jobs.value(corpus="demo", status="replayed") == 1
            assert metrics.jobs.value(corpus="demo", status="done") == 1
            __, total_sum, count = metrics.job_seconds.snapshot(
                corpus="demo"
            )
            assert count == 1 and total_sum > 0
        finally:
            manager.shutdown(wait=True)


class TestAccessLog:
    def test_one_json_line_per_request(self, tmp_path):
        lines: list[dict] = []
        instance = CacheServiceServer(
            DiskCacheStore(tmp_path / "cache"),
            port=0,
            access_log=lines.append,
        )
        instance.start()
        try:
            client = ServiceClient(instance.url)
            client.healthz()
            client.stats()
            with pytest.raises(ServiceError):
                client._json("GET", "/no-such-route")
        finally:
            instance.stop()
        assert len(lines) == 3
        for record in lines:
            # Every record is JSON-serialisable with the full shape.
            parsed = json.loads(json.dumps(record))
            assert set(parsed) >= {
                "ts", "client", "method", "path", "route", "status",
                "duration_seconds",
            }
        assert [r["status"] for r in lines] == [200, 200, 404]
        assert lines[2]["route"] == "other"
