"""E4 — Table 4: semantic-linkage precision over held-out terms.

The paper positions 60 terms added to MeSH between 2009 and 2015 and
reports the fraction of terms with at least one correct proposition
(synonym / father / son) in the Top 1 / 2 / 5 / 10: 0.333 / 0.400 /
0.500 / 0.583.  This benchmark reruns the protocol on a generated
MeSH-like ontology with a noisy PubMed-like corpus and asserts the
shape: monotone growth, a weak Top-1, and a Top-10 roughly twice Top-1.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.corpus.pubmed import PubMedSpec
from repro.eval import paper
from repro.eval.experiments import run_linkage_precision_experiment

# Calibrated toward the paper's difficulty regime (see the runner's
# docstring): sparse contexts, generic shared vocabulary, few synonyms.
# Measured at these settings (25 terms, seed 0): 0.32/0.44/0.52/0.68
# against the paper's 0.333/0.400/0.500/0.583.
HARD_SPEC = PubMedSpec(
    mention_prob=0.25,
    related_mention_prob=0.4,
    noise_mention_prob=0.5,
    background_fraction=0.9,
)


def test_table4_linkage_precision(benchmark, scale):
    n_terms = paper.LINKAGE_N_TERMS if scale == "paper" else 30
    evaluation = run_once(
        benchmark,
        run_linkage_precision_experiment,
        n_terms=n_terms,
        n_concepts=200,
        docs_per_concept=2,
        mean_synonyms=0.2,
        inherit_fraction=0.1,
        pubmed_spec=HARD_SPEC,
        seed=0,
    )
    row = evaluation.as_row()
    print_paper_vs_measured(
        f"Table 4 — hit@k over {evaluation.n_terms} held-out terms",
        [
            (f"Top {k}", f"{paper.TABLE4_PRECISION_AT[k]:.3f}", f"{row[k]:.3f}")
            for k in (1, 2, 5, 10)
        ],
    )

    # Shape assertions.
    assert row[1] <= row[2] <= row[5] <= row[10], "precision must grow with k"
    assert row[10] > row[1], "a longer proposition list must help"
    assert 0.15 <= row[1] <= 0.65, f"Top-1 far from the paper's regime: {row[1]}"
    assert 0.35 <= row[10] <= 0.9, f"Top-10 far from the paper's regime: {row[10]}"
    # Top-10 should recover notably more terms than Top-1 (paper: ×1.75).
    assert row[10] >= row[1] + 0.1
