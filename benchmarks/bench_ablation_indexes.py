"""A1 — ablation: the paper's five indexes vs classic internal indexes.

Are the new Table 2 indexes actually the right tool for the paper's task?
This ablation runs the same sense-number sweep with silhouette,
Calinski–Harabasz, and Davies–Bouldin added, on the same entities.  The
interesting shape: on the MSH-WSD-like distribution (93 % two-sense),
f_k's conservatism matches the prior and stays at the top, while general-
purpose indexes pay for every over-split.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.clustering.indexes import BASELINE_INDEXES, PAPER_INDEXES
from repro.eval import paper
from repro.eval.experiments import run_sense_number_experiment
from repro.utils.tables import format_table


def test_ablation_paper_indexes_vs_baselines(benchmark, scale):
    n_entities = 100 if scale == "paper" else 40
    result = run_once(
        benchmark,
        run_sense_number_experiment,
        n_entities=n_entities,
        contexts_per_sense=20,
        sense_overlap=0.45,
        background_fraction=0.6,
        algorithms=("rb", "rbr"),
        representations=("bow",),
        indexes=PAPER_INDEXES + BASELINE_INDEXES,
        seed=0,
    )

    by_index = result.best_by_index()
    rows = [
        [index, "paper" if index in PAPER_INDEXES else "baseline",
         f"{acc:.3f}"]
        for index, acc in sorted(by_index.items(), key=lambda kv: -kv[1])
    ]
    print()
    print(
        format_table(
            ["index", "family", "best accuracy"],
            rows,
            title=f"A1: index ablation ({result.n_entities} entities, "
            f"k distribution {result.k_distribution})",
        )
    )
    best_paper_index = max(PAPER_INDEXES, key=by_index.get)
    best_overall = max(by_index, key=by_index.get)
    print_paper_vs_measured(
        "A1 headline",
        [
            ("best of the paper's five", "fk", best_paper_index),
            ("best overall (incl. baselines)", "(not evaluated)", best_overall),
        ],
    )

    # Within the paper's own inventory, f_k must win (the 93.1 % claim).
    assert by_index["fk"] == max(by_index[i] for i in PAPER_INDEXES)
    # General-purpose baselines are allowed to match or beat it — the
    # paper never compared against them; they must at least be competitive
    # here, otherwise the ablation would be vacuous.
    assert max(by_index[i] for i in BASELINE_INDEXES) >= by_index["fk"] - 0.1
    # the monotone a_k is the clear loser
    assert by_index["ak"] == min(by_index.values())
