"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table (or reported number) of the paper
and prints it next to the published values.  Experiments run **once** per
benchmark (``benchmark.pedantic(..., rounds=1)``) — they are minutes-long
end-to-end pipelines, not micro-kernels.

Scale control: set ``REPRO_BENCH_SCALE=paper`` for full paper-sized runs
(203 WSD entities, 60 held-out terms); the default ``small`` keeps the
whole suite in a few minutes while preserving every result's shape.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Machine-readable benchmark artifacts land next to this file.
BENCH_OUTPUT_DIR = Path(__file__).resolve().parent


def bench_scale() -> str:
    """``"small"`` (default) or ``"paper"`` from REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be small|paper, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    """The active benchmark scale."""
    return bench_scale()


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable benchmark artifact (``BENCH_<name>.json``).

    Future PRs diff these files for a perf trajectory; the active scale
    is recorded so numbers are only compared like for like.
    """
    path = BENCH_OUTPUT_DIR / f"BENCH_{name}.json"
    record = {"scale": bench_scale(), **payload}
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def print_paper_vs_measured(title: str, rows: list[tuple[str, object, object]]) -> None:
    """Uniform 'paper vs measured' block printed by every benchmark."""
    from repro.utils.tables import format_table

    print()
    print(
        format_table(
            ["quantity", "paper", "measured"],
            [[name, paper_value, measured] for name, paper_value, measured in rows],
            title=title,
        )
    )
