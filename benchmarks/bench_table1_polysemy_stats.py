"""E1 — Table 1: polysemic-term statistics of UMLS and MeSH (EN/FR/ES).

Regenerates the paper's Table 1 on the synthetic metathesaurus.  Counts
are produced at a reduced scale (the real English UMLS holds 9.9 M
terms); the *shape* that matters — k = 2 dominating every terminology,
roughly one polysemic term per 200 — is asserted, and both tables are
printed for EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.eval import paper
from repro.eval.experiments import run_table1_experiment
from repro.utils.tables import format_table


def paper_table() -> str:
    rows = []
    keys = sorted(paper.TABLE1_POLYSEMY_COUNTS)
    for k in (2, 3, 4, 5):
        label = f"{k}" if k < 5 else "5+"
        rows.append(
            [label] + [paper.TABLE1_POLYSEMY_COUNTS[key][k] for key in keys]
        )
    headers = ["k"] + [f"{s.upper()} {l.upper()}" for s, l in keys]
    return format_table(headers, rows, title="Table 1 (paper, full scale)")


@pytest.mark.parametrize("seed", [0])
def test_table1_polysemy_statistics(benchmark, scale, seed):
    gen_scale = 100.0 if scale == "paper" else 1000.0
    result = run_once(benchmark, run_table1_experiment, scale=gen_scale, seed=seed)
    stats = result.statistics

    print()
    print(paper_table())
    print()
    print(result.table())

    # Shape assertions: the k = 2 bin dominates wherever polysemy exists...
    for key, histogram in stats.histograms.items():
        total = sum(histogram.values())
        if total == 0:
            continue
        assert histogram[2] == max(histogram.values()), key
    # ...with the UMLS-EN shares close to the paper's distribution.
    en = stats.histograms[("umls", "en")]
    en_paper = paper.TABLE1_POLYSEMY_COUNTS[("umls", "en")]
    share_measured = en[2] / sum(en.values())
    share_paper = en_paper[2] / sum(en_paper.values())
    assert abs(share_measured - share_paper) < 0.05

    # The prose claim: ~1 polysemic term in 200 for English UMLS.
    ratio = stats.polysemy_ratio(("umls", "en"))
    print_paper_vs_measured(
        "Prose claims",
        [
            ("UMLS-EN polysemy rate", "~1/200", f"1/{round(1 / ratio)}"),
            ("dominant bin share (k=2)", f"{share_paper:.3f}", f"{share_measured:.3f}"),
        ],
    )
    assert 1 / 400 < ratio < 1 / 100
