"""A4 — ablation: Step IV.2's father/son expansion of the neighbourhood.

The paper evaluates the candidate against "(i) its MeSH neighbors, and
(ii) the fathers/sons of those neighbors".  This ablation runs the
linkage evaluation with and without the (ii) expansion: hierarchy
expansion should recover strictly more correct positions, because
fathers/sons that never literally co-occur with the candidate only enter
the ranking through it.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.corpus.pubmed import PubMedSpec
from repro.eval.experiments import run_linkage_precision_experiment
from repro.linkage.evaluation import evaluate_linkage
from repro.linkage.linker import SemanticLinker
from repro.ontology.snapshot import held_out_terms
from repro.scenarios import make_enrichment_scenario
from repro.utils.tables import format_table


def run_scope_ablation(n_terms: int, seed: int) -> dict[str, dict[int, float]]:
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=120,
        docs_per_concept=3,
        mean_synonyms=0.4,
        inherit_fraction=0.3,
        recent_fraction=0.5 * n_terms / 120,
        spec=PubMedSpec(
            mention_prob=0.5,
            related_mention_prob=0.3,
            noise_mention_prob=0.25,
            background_fraction=0.7,
        ),
    )
    held = held_out_terms(scenario.ontology, 2009, 2015)[:n_terms]
    out = {}
    for label, expand in (("neighbors only", False), ("+ fathers/sons", True)):
        linker = SemanticLinker(
            scenario.ontology,
            scenario.corpus,
            top_k=10,
            expand_hierarchy=expand,
        )
        out[label] = evaluate_linkage(linker, held).as_row()
    return out


def test_ablation_linkage_scope(benchmark, scale):
    n_terms = 40 if scale == "paper" else 20
    results = run_once(benchmark, run_scope_ablation, n_terms=n_terms, seed=0)

    rows = [
        [label] + [f"{row[k]:.3f}" for k in (1, 2, 5, 10)]
        for label, row in results.items()
    ]
    print()
    print(
        format_table(
            ["scope", "Top 1", "Top 2", "Top 5", "Top 10"],
            rows,
            title=f"A4: linkage scope ablation ({n_terms} held-out terms)",
        )
    )
    bare = results["neighbors only"]
    expanded = results["+ fathers/sons"]
    print_paper_vs_measured(
        "A4 headline",
        [("Top-10 gain from expansion", "(motivates step IV.2)",
          f"{expanded[10] - bare[10]:+.3f}")],
    )
    # Expansion must never hurt and should help at the tail of the list.
    assert expanded[10] >= bare[10]
