"""A2 — ablation: bag-of-words vs graph context representation.

"In general, bag-of-words and graph representations obtain similar
accuracy values."  This ablation runs the sense-number sweep under both
representations on the same entities and checks the gap stays small.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.eval.experiments import run_sense_number_experiment
from repro.utils.tables import format_table


def test_ablation_bow_vs_graph(benchmark, scale):
    n_entities = 80 if scale == "paper" else 36
    result = run_once(
        benchmark,
        run_sense_number_experiment,
        n_entities=n_entities,
        contexts_per_sense=20,
        sense_overlap=0.45,
        background_fraction=0.6,
        algorithms=("rb", "direct"),
        representations=("bow", "graph"),
        seed=0,
    )

    rows = []
    for index in ("ak", "bk", "ck", "ek", "fk"):
        bow = max(
            acc for (a, r, i), acc in result.accuracies.items()
            if r == "bow" and i == index
        )
        graph = max(
            acc for (a, r, i), acc in result.accuracies.items()
            if r == "graph" and i == index
        )
        rows.append([index, f"{bow:.3f}", f"{graph:.3f}", f"{bow - graph:+.3f}"])
    print()
    print(
        format_table(
            ["index", "bow", "graph", "gap"],
            rows,
            title=f"A2: representation ablation ({result.n_entities} entities)",
        )
    )

    bow_best = max(
        acc for (a, r, i), acc in result.accuracies.items() if r == "bow"
    )
    graph_best = max(
        acc for (a, r, i), acc in result.accuracies.items() if r == "graph"
    )
    print_paper_vs_measured(
        "A2 headline",
        [("|bow − graph| best-accuracy gap", "≈ 0 ('similar')",
          f"{abs(bow_best - graph_best):.3f}")],
    )
    assert abs(bow_best - graph_best) < 0.1
