"""End-to-end workflow benchmark (not a paper table; throughput guard).

Times the assembled four-step :class:`~repro.workflow.OntologyEnricher`
on a mid-size scenario and sanity-checks the report: the workflow is the
paper's deliverable, so the suite should notice if wiring changes make it
produce empty reports or blow up its runtime.  Per-stage wall times are
emitted to ``BENCH_pipeline.json`` so future PRs have a perf trajectory
to compare against.
"""

from benchmarks.conftest import emit_bench_json, run_once
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def run_workflow(n_concepts: int, docs_per_concept: int, seed: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: max(2, n_concepts // 12)},
    )
    enricher = OntologyEnricher(
        scenario.ontology,
        config=EnrichmentConfig(n_candidates=10, min_contexts=3),
        pos_lexicon=scenario.pos_lexicon,
    )
    return enricher.enrich(scenario.corpus)


def test_workflow_end_to_end(benchmark, scale):
    n_concepts = 60 if scale == "paper" else 30
    report = run_once(
        benchmark,
        run_workflow,
        n_concepts=n_concepts,
        docs_per_concept=6,
        seed=5,
    )
    print()
    print(report.to_table())

    emit_bench_json(
        "pipeline",
        {
            "n_concepts": n_concepts,
            "docs_per_concept": 6,
            "seed": 5,
            "stage_seconds": report.timings,
            "total_seconds": sum(report.timings.values()),
            "n_candidates": report.n_candidates,
            "n_completed": len(report.completed_terms()),
            "cache": report.cache,
        },
    )

    assert report.n_candidates >= 1
    completed = report.completed_terms()
    assert completed, "workflow produced no completed candidates"
    for term_report in completed:
        assert term_report.n_senses >= 1
        assert term_report.propositions
