"""Cache-service benchmark: warm-over-HTTP vs cold enrichment.

The served deployment claim (see :mod:`repro.service`): a long-lived
``repro serve`` process owns the feature store, and *any* pipeline run
pointing ``cache_url`` at it — a fresh enricher, a fresh process, a
different machine — starts warm.  Recorded in
``BENCH_cache_service.json``:

* two runs sharing one server produce byte-identical reports, and the
  second (warm) run's wall time is measurably below the cold run's
  (``remote_hits > 0``, zero featurisation misses);
* killing the server mid-deployment degrades the next run to clean
  misses (``remote_errors > 0``), never an exception — the dead-server
  run is also timed, bounding the cost of total service loss.
"""

import tempfile
import time

from benchmarks.conftest import emit_bench_json, print_paper_vs_measured, run_once
from repro.polysemy.cache_store import DiskCacheStore
from repro.scenarios import make_enrichment_scenario
from repro.service.server import CacheServiceServer
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def outcome(report):
    return [
        (
            t.term, t.polysemic, t.n_senses, t.skipped_reason,
            [(p.rank, p.term, p.cosine) for p in t.propositions],
        )
        for t in report.terms
    ]


def run_measurements(n_concepts: int, docs_per_concept: int, seed: int,
                     n_candidates: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
    )
    server = CacheServiceServer(
        DiskCacheStore(tempfile.mkdtemp(prefix="bench-cache-service-")),
        host="127.0.0.1",
        port=0,
    )
    server.start()

    def enrich_once():
        # A brand-new enricher per run: nothing warm survives in-process,
        # only what the service holds behind cache_url.
        config = EnrichmentConfig(
            n_candidates=n_candidates, cache_url=server.url, seed=0
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        started = time.perf_counter()
        report = enricher.enrich(scenario.corpus)
        return report, time.perf_counter() - started

    try:
        cold_report, cold_seconds = enrich_once()
        warm_report, warm_seconds = enrich_once()
    finally:
        server.stop()
    # The server is gone: the same config must still complete, eating
    # one clean miss (plus one dropped write) per featurised candidate.
    dead_report, dead_seconds = enrich_once()

    assert outcome(cold_report) == outcome(warm_report), \
        "served caching changed the enrichment output"
    assert outcome(cold_report) == outcome(dead_report), \
        "losing the service changed the enrichment output"
    assert warm_report.cache["misses"] == 0, \
        "warm run should featurise nothing"
    assert warm_report.cache["remote_hits"] == warm_report.cache["hits"]
    assert dead_report.cache["remote_errors"] > 0
    assert dead_report.cache["remote_hits"] == 0

    return {
        "n_documents": scenario.corpus.n_documents(),
        "n_tokens": scenario.corpus.n_tokens(),
        "n_candidates": n_candidates,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "dead_server_seconds": dead_seconds,
        "cold_cache": cold_report.cache,
        "warm_cache": warm_report.cache,
        "dead_server_cache": dead_report.cache,
        "cold_stage_seconds": cold_report.timings,
        "warm_stage_seconds": warm_report.timings,
    }


def test_warm_over_http_vs_cold(benchmark, scale):
    n_concepts = 60 if scale == "paper" else 30
    result = run_once(
        benchmark,
        run_measurements,
        n_concepts=n_concepts,
        docs_per_concept=6,
        seed=5,
        n_candidates=10,
    )
    speedup = result["cold_seconds"] / max(result["warm_seconds"], 1e-9)
    print_paper_vs_measured(
        "Cache service: warm-over-HTTP enrichment "
        f"({result['n_documents']} docs, {result['n_tokens']:,} tokens)",
        [
            ("cold enrich (s)", "-", f"{result['cold_seconds']:.4f}"),
            ("warm enrich (s)", "-", f"{result['warm_seconds']:.4f}"),
            ("dead-server enrich (s)", "-",
             f"{result['dead_server_seconds']:.4f}"),
            ("warm speedup", "-", f"{speedup:.2f}x"),
            ("cold misses", "-", result["cold_cache"]["misses"]),
            ("warm remote hits", "-", result["warm_cache"]["remote_hits"]),
            ("dead-server remote errors", "-",
             result["dead_server_cache"]["remote_errors"]),
        ],
    )
    emit_bench_json(
        "cache_service", {**result, "warm_speedup": speedup}
    )

    # The acceptance bar: sharing a server must make the second run
    # measurably faster than the cold one, and the warm vectors must
    # actually have travelled over HTTP.
    assert result["warm_cache"]["remote_hits"] > 0
    assert speedup >= 1.3, (
        f"warm-over-HTTP run is only {speedup:.2f}x faster than cold"
    )
