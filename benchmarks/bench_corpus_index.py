"""CorpusIndex benchmark: build cost vs. lookup savings over raw scans.

The positional index is the substrate every pipeline layer retrieves
term occurrences through; this benchmark records what one build costs
and how postings-based lookup compares with the legacy full-document
scan it replaced.  Results land in ``BENCH_corpus_index.json``.
"""

import time

from benchmarks.conftest import emit_bench_json, print_paper_vs_measured, run_once
from repro.corpus.index import CorpusIndex
from repro.scenarios import make_enrichment_scenario


def scan_count(corpus, needle: tuple[str, ...]) -> int:
    """The legacy per-term document scan (non-overlapping count)."""
    span = len(needle)
    count = 0
    for doc in corpus:
        tokens = doc.tokens()
        n = len(tokens)
        i = 0
        while i <= n - span:
            if tuple(tokens[i : i + span]) == needle:
                count += 1
                i += span
            else:
                i += 1
    return count


def run_comparison(n_concepts: int, docs_per_concept: int, seed: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
    )
    corpus = scenario.corpus
    terms = scenario.ontology.terms()

    built_at = time.perf_counter()
    index = CorpusIndex(corpus)
    build_seconds = time.perf_counter() - built_at

    lookup_at = time.perf_counter()
    index_counts = [index.term_frequency(term) for term in terms]
    lookup_seconds = time.perf_counter() - lookup_at

    scan_at = time.perf_counter()
    scan_counts = [
        scan_count(corpus, tuple(term.lower().split())) for term in terms
    ]
    scan_seconds = time.perf_counter() - scan_at

    assert index_counts == scan_counts, "index and scan disagree"
    return {
        "n_documents": corpus.n_documents(),
        "n_tokens": corpus.n_tokens(),
        "n_terms": len(terms),
        "build_seconds": build_seconds,
        "index_lookup_seconds": lookup_seconds,
        "scan_lookup_seconds": scan_seconds,
    }


def test_corpus_index_vs_scan(benchmark, scale):
    n_concepts = 80 if scale == "paper" else 40
    result = run_once(
        benchmark,
        run_comparison,
        n_concepts=n_concepts,
        docs_per_concept=6,
        seed=11,
    )
    amortised = result["build_seconds"] + result["index_lookup_seconds"]
    speedup = result["scan_lookup_seconds"] / max(amortised, 1e-9)
    print_paper_vs_measured(
        "CorpusIndex vs raw scans "
        f"({result['n_terms']} terms, {result['n_tokens']:,} tokens)",
        [
            ("index build (s)", "-", f"{result['build_seconds']:.4f}"),
            ("index lookups (s)", "-", f"{result['index_lookup_seconds']:.4f}"),
            ("raw scans (s)", "-", f"{result['scan_lookup_seconds']:.4f}"),
            ("speedup incl. build", "-", f"{speedup:.1f}x"),
        ],
    )
    emit_bench_json("corpus_index", {**result, "speedup_incl_build": speedup})

    # The build must amortise over one batch of term lookups.
    assert result["scan_lookup_seconds"] > amortised
