"""Persistent feature-cache benchmark: warm-from-disk vs cold enrichment.

The paper's workflow is re-run-heavy — the same corpus is enriched
repeatedly as the ontology grows — so Step II featurisation cost is
paid over and over.  With ``EnrichmentConfig(cache_dir=...)`` a
:class:`~repro.polysemy.cache_store.DiskCacheStore` persists the
feature vectors across processes, and the second run starts warm even
from a brand-new enricher.  Recorded in
``BENCH_persistent_cache.json``:

* a warm second ``enrich`` run is at least 2x faster end to end than
  the cold first run (the acceptance bar; featurisation itself drops to
  zero misses);
* the warm report is identical to the cold one — persisted caching
  never changes enrichment output.
"""

import tempfile
import time

from benchmarks.conftest import emit_bench_json, print_paper_vs_measured, run_once
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def outcome(report):
    return [
        (
            t.term, t.polysemic, t.n_senses, t.skipped_reason,
            [(p.rank, p.term, p.cosine) for p in t.propositions],
        )
        for t in report.terms
    ]


def run_measurements(n_concepts: int, docs_per_concept: int, seed: int,
                     n_candidates: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
    )
    cache_dir = tempfile.mkdtemp(prefix="bench-persistent-cache-")

    def enrich_once():
        # A brand-new enricher per run: nothing warm survives in-process,
        # only what DiskCacheStore persisted under cache_dir.
        config = EnrichmentConfig(
            n_candidates=n_candidates, cache_dir=cache_dir, seed=0
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        started = time.perf_counter()
        report = enricher.enrich(scenario.corpus)
        return report, time.perf_counter() - started

    cold_report, cold_seconds = enrich_once()
    warm_report, warm_seconds = enrich_once()

    assert outcome(cold_report) == outcome(warm_report), \
        "persisted caching changed the enrichment output"
    assert warm_report.cache["misses"] == 0, \
        "warm run should featurise nothing"
    assert warm_report.cache["disk_hits"] == warm_report.cache["hits"]

    return {
        "n_documents": scenario.corpus.n_documents(),
        "n_tokens": scenario.corpus.n_tokens(),
        "n_candidates": n_candidates,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_cache": cold_report.cache,
        "warm_cache": warm_report.cache,
        "cold_stage_seconds": cold_report.timings,
        "warm_stage_seconds": warm_report.timings,
    }


def test_warm_run_vs_cold_run(benchmark, scale):
    n_concepts = 60 if scale == "paper" else 30
    result = run_once(
        benchmark,
        run_measurements,
        n_concepts=n_concepts,
        docs_per_concept=6,
        seed=5,
        n_candidates=10,
    )
    speedup = result["cold_seconds"] / max(result["warm_seconds"], 1e-9)
    print_paper_vs_measured(
        "Persistent feature cache "
        f"({result['n_documents']} docs, {result['n_tokens']:,} tokens)",
        [
            ("cold enrich (s)", "-", f"{result['cold_seconds']:.4f}"),
            ("warm enrich (s)", "-", f"{result['warm_seconds']:.4f}"),
            ("warm speedup", "-", f"{speedup:.2f}x"),
            ("cold misses", "-", result["cold_cache"]["misses"]),
            ("warm disk hits", "-", result["warm_cache"]["disk_hits"]),
            ("store bytes", "-", result["warm_cache"]["store_bytes"]),
        ],
    )
    emit_bench_json(
        "persistent_cache", {**result, "warm_speedup": speedup}
    )

    # The whole point: the second run must not pay featurisation again.
    assert speedup >= 2.0, (
        f"warm run is only {speedup:.2f}x faster than cold"
    )
