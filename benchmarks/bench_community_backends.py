"""Step II training throughput: native Louvain vs networkx greedy.

The per-term graph features dominate workflow training time, and within
them community detection is the hot call.  This benchmark runs the full
workflow once per community backend on the same scenario and compares
``timings["train"]`` — the PR-over-PR guard for the Louvain fast path —
while asserting the detection labels are identical, so the speedup never
silently buys a different answer.  Results land in
``BENCH_community_backends.json``.
"""

from benchmarks.conftest import (
    emit_bench_json,
    print_paper_vs_measured,
    run_once,
)
from repro.scenarios import make_enrichment_scenario
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def run_workflow_per_backend(n_concepts: int, docs_per_concept: int, seed: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: max(2, n_concepts // 12)},
    )
    reports = {}
    for backend in ("louvain", "greedy"):
        enricher = OntologyEnricher(
            scenario.ontology,
            config=EnrichmentConfig(
                n_candidates=10, min_contexts=3, community_backend=backend
            ),
            pos_lexicon=scenario.pos_lexicon,
        )
        reports[backend] = enricher.enrich(scenario.corpus)
    return reports


def test_community_backend_speedup(benchmark, scale):
    n_concepts = 60 if scale == "paper" else 30
    reports = run_once(
        benchmark,
        run_workflow_per_backend,
        n_concepts=n_concepts,
        docs_per_concept=6,
        seed=5,
    )

    labels = {
        backend: [t.polysemic for t in report.terms]
        for backend, report in reports.items()
    }
    assert labels["louvain"] == labels["greedy"], (
        "community backends must agree on detection labels"
    )

    train_louvain = reports["louvain"].timings["train"]
    train_greedy = reports["greedy"].timings["train"]
    speedup = train_greedy / train_louvain if train_louvain > 0 else float("inf")
    print_paper_vs_measured(
        "Step II training: community backends",
        [
            ("train seconds (louvain)", "-", f"{train_louvain:.3f}"),
            ("train seconds (greedy)", "-", f"{train_greedy:.3f}"),
            ("speedup", ">= 3x (issue 2 target)", f"{speedup:.2f}x"),
        ],
    )

    emit_bench_json(
        "community_backends",
        {
            "n_concepts": n_concepts,
            "docs_per_concept": 6,
            "seed": 5,
            "train_seconds": {
                "louvain": train_louvain,
                "greedy": train_greedy,
            },
            "speedup": speedup,
            "labels_identical": True,
            "cache": {
                backend: report.cache for backend, report in reports.items()
            },
        },
    )

    # The native backend must never be slower; the 3x target is tracked
    # in the emitted JSON (tiny CI runners are too noisy to hard-gate).
    assert speedup > 1.0
