"""Serving-layer benchmark: batch protocol round trips + sustained load.

Two claims of the production serving layer land in
``BENCH_service_load.json``:

* **Round-trip economics** — a warm enrichment run pointed at
  ``--cache-url`` must issue at least **10x fewer** HTTP round trips
  with the batched ``/vectors/batch`` protocol than with the per-vector
  protocol (``cache_batch_size=1``, the only protocol the PR 5 server
  spoke), while producing the identical report.  Round trips are
  counted *server-side* as the ``/stats`` ``requests`` delta — valid
  because ``/stats`` polls themselves are deliberately uncounted
  (monitoring must not perturb the measurement).
* **Sustained throughput** — :func:`repro.service.loadgen.run_load`
  drives the same server with a concurrent mixed GET/PUT/batch/stats
  workload and records req/s plus p50/p99 latency, with zero failed
  requests.
"""

import tempfile

from benchmarks.conftest import emit_bench_json, print_paper_vs_measured, run_once
from repro.polysemy.cache_store import DiskCacheStore
from repro.scenarios import make_enrichment_scenario
from repro.service.client import ServiceClient
from repro.service.loadgen import run_load
from repro.service.server import CacheServiceServer
from repro.workflow.config import EnrichmentConfig
from repro.workflow.pipeline import OntologyEnricher


def outcome(report):
    return [
        (
            t.term, t.polysemic, t.n_senses, t.skipped_reason,
            [(p.rank, p.term, p.cosine) for p in t.propositions],
        )
        for t in report.terms
    ]


def run_measurements(n_concepts: int, docs_per_concept: int, seed: int,
                     n_candidates: int, clients: int, ops_per_client: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
    )
    server = CacheServiceServer(
        DiskCacheStore(tempfile.mkdtemp(prefix="bench-service-load-")),
        host="127.0.0.1",
        port=0,
    )
    server.start()

    def enrich_once(batch_size: int):
        # A brand-new enricher per run: nothing warm survives
        # in-process, only what the service holds behind cache_url.
        config = EnrichmentConfig(
            n_candidates=n_candidates,
            cache_url=server.url,
            cache_batch_size=batch_size,
            seed=0,
        )
        enricher = OntologyEnricher(
            scenario.ontology, config=config,
            pos_lexicon=scenario.pos_lexicon,
        )
        return enricher.enrich(scenario.corpus)

    client = ServiceClient(server.url)
    try:
        # Populate the served store once; protocol choice is irrelevant
        # here (both warm runs below read the same vectors back).
        cold_report = enrich_once(batch_size=256)

        def counted_requests() -> int:
            # /stats polls are uncounted server-side, so this delta
            # measurement does not perturb itself.
            return client.stats()["requests"]

        before = counted_requests()
        warm_single = enrich_once(batch_size=1)
        per_vector_requests = counted_requests() - before

        before = counted_requests()
        warm_batched = enrich_once(batch_size=256)
        batched_requests = counted_requests() - before

        load = run_load(
            server.url,
            clients=clients,
            ops_per_client=ops_per_client,
            batch_size=32,
            seed=7,
        )
    finally:
        client.close()
        server.stop()

    assert outcome(cold_report) == outcome(warm_single), \
        "per-vector protocol changed the enrichment output"
    assert outcome(cold_report) == outcome(warm_batched), \
        "batch protocol changed the enrichment output"
    assert warm_single.cache["misses"] == 0
    assert warm_batched.cache["misses"] == 0
    assert warm_batched.cache["remote_hits"] > 0
    assert load.failed_requests == 0, \
        f"load run saw {load.failed_requests} failed requests"

    return {
        "n_documents": scenario.corpus.n_documents(),
        "n_tokens": scenario.corpus.n_tokens(),
        "n_candidates": n_candidates,
        "per_vector_requests": per_vector_requests,
        "batched_requests": batched_requests,
        "warm_remote_hits": warm_batched.cache["remote_hits"],
        "load": load.to_dict(),
    }


def test_batch_round_trips_and_sustained_load(benchmark, scale):
    paper_sized = scale == "paper"
    result = run_once(
        benchmark,
        run_measurements,
        n_concepts=60 if paper_sized else 30,
        docs_per_concept=6,
        seed=5,
        n_candidates=24 if paper_sized else 16,
        clients=12 if paper_sized else 6,
        ops_per_client=60 if paper_sized else 30,
    )
    ratio = result["per_vector_requests"] / max(result["batched_requests"], 1)
    load = result["load"]
    print_paper_vs_measured(
        "Service under load: batch protocol + mixed traffic "
        f"({result['n_documents']} docs, {result['n_tokens']:,} tokens)",
        [
            ("warm round trips, per-vector", "-",
             result["per_vector_requests"]),
            ("warm round trips, batched", "-", result["batched_requests"]),
            ("round-trip reduction", ">=10x", f"{ratio:.1f}x"),
            ("load clients", "-", load["clients"]),
            ("load ops", "-", load["requests"]),
            ("sustained req/s", "-", f"{load['requests_per_second']:.1f}"),
            ("p50 latency (s)", "-", f"{load['p50_seconds']:.5f}"),
            ("p99 latency (s)", "-", f"{load['p99_seconds']:.5f}"),
            ("failed requests", "0", load["failed_requests"]),
        ],
    )
    emit_bench_json(
        "service_load", {**result, "round_trip_reduction": ratio}
    )

    # The acceptance bar: batching must cut warm-run HTTP round trips by
    # at least an order of magnitude without changing the report.
    assert ratio >= 10.0, (
        f"batch protocol only cut round trips by {ratio:.1f}x "
        f"({result['per_vector_requests']} -> {result['batched_requests']})"
    )
