"""E2 — §3(i) + Table 2: number-of-senses prediction on MSH-WSD-like data.

The paper sweeps 5 CLUTO algorithms × 2 representations and evaluates the
five Table 2 indexes; the best configuration reaches 93.1 % accuracy with
max(f_k), and bag-of-words ≈ graph representation.  This benchmark
regenerates the accuracy grid and asserts the shape: f_k best, both
representations within a few points of each other.
"""

import pytest

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.eval import paper
from repro.eval.experiments import run_sense_number_experiment
from repro.utils.tables import format_table

# Calibrated so f_k's conservatism wins, exactly as on the real MSH WSD
# distribution (93.1 % of entities have two senses).
NOISE = dict(sense_overlap=0.45, background_fraction=0.6)


def test_sense_number_prediction_grid(benchmark, scale):
    n_entities = paper.MSHWSD_N_ENTITIES if scale == "paper" else 60
    result = run_once(
        benchmark,
        run_sense_number_experiment,
        n_entities=n_entities,
        contexts_per_sense=20,
        seed=0,
        **NOISE,
    )

    # Accuracy grid in the layout of the paper's experiment.
    algorithms = paper.SENSE_PREDICTION_ALGORITHMS
    rows = []
    for representation in ("bow", "graph"):
        for index in ("ak", "bk", "ck", "ek", "fk"):
            row = [f"{representation}/{index}"]
            for algorithm in algorithms:
                acc = result.accuracies[(algorithm, representation, index)]
                row.append(f"{acc:.3f}")
            rows.append(row)
    print()
    print(
        format_table(
            ["rep/index"] + list(algorithms),
            rows,
            title=f"Sense-number prediction accuracy ({result.n_entities} entities, "
            f"k distribution {result.k_distribution})",
        )
    )

    __, best_acc = result.best()
    by_index = result.best_by_index()
    tied = sorted(i for i, a in by_index.items() if a == max(by_index.values()))
    print_paper_vs_measured(
        "§3(i) headline",
        [
            ("best accuracy", f"{paper.SENSE_PREDICTION_BEST_ACCURACY:.3f}",
             f"{best_acc:.3f}"),
            ("best index", paper.SENSE_PREDICTION_BEST_INDEX,
             ", ".join(tied) + (" (tied)" if len(tied) > 1 else "")),
        ],
    )

    # Shape assertions.
    assert by_index["fk"] == max(by_index.values()), (
        f"f_k must be the best index, got {by_index}"
    )
    assert abs(best_acc - paper.SENSE_PREDICTION_BEST_ACCURACY) < 0.08
    # a_k (monotone in k) must be far worse than f_k.
    assert by_index["ak"] < by_index["fk"] - 0.3

    # Both representations close (paper: "similar accuracy values").
    bow_best = max(
        acc for (a, r, i), acc in result.accuracies.items() if r == "bow"
    )
    graph_best = max(
        acc for (a, r, i), acc in result.accuracies.items() if r == "graph"
    )
    assert abs(bow_best - graph_best) < 0.08
