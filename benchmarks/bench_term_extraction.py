"""E6 — Step I substrate: term-extraction measure comparison.

The workflow's Step I runs BioTex, whose companion paper [4] compares
ranking measures by precision@k against UMLS.  This benchmark reruns the
comparison on the synthetic corpus against the generated terminology:
every measure ranks the same pattern-filtered candidates; real ontology
terms should concentrate at the top, and the linguistically-informed
measures (LIDF-value and the fusions) should be competitive with or
better than raw frequency-based ones.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.eval.experiments import run_term_extraction_experiment
from repro.extraction.measures import MEASURE_NAMES
from repro.utils.tables import format_table

KS = (10, 50, 100, 200)


def test_term_extraction_measures(benchmark, scale):
    result = run_once(
        benchmark,
        run_term_extraction_experiment,
        n_concepts=120 if scale == "paper" else 80,
        docs_per_concept=6,
        ks=KS,
        seed=0,
    )

    rows = []
    for measure in MEASURE_NAMES:
        curve = result.precision[measure]
        rows.append([measure] + [f"{curve[k]:.3f}" for k in KS])
    print()
    print(
        format_table(
            ["measure"] + [f"P@{k}" for k in KS],
            rows,
            title="Term extraction precision@k vs generated terminology",
        )
    )
    best10, value10 = result.best_at(10)
    print_paper_vs_measured(
        "Companion paper [4] shape",
        [
            ("best measure family", "LIDF-value / fusions", best10),
            ("best P@10", "(corpus-dependent)", f"{value10:.3f}"),
        ],
    )

    # Shape assertions: extraction must be far better than chance, and the
    # pattern-aware flagship must be competitive at the head of the list.
    assert value10 >= 0.6, f"best P@10 only {value10}"
    lidf = result.precision["lidf_value"]
    assert lidf[10] >= 0.5 * value10
    # The flagship front-loads correct terms (its head is densest)...
    assert lidf[10] >= lidf[200] - 0.05
    # ...and beats the frequency-only baselines at the head, the central
    # claim of the companion paper [4].  (Plain TF-IDF may *trail* at
    # P@10: df=1 junk bigrams get maximal IDF — a real artefact.)
    assert lidf[10] >= result.precision["tf_idf"][10]
    assert lidf[10] >= result.precision["okapi"][10]
