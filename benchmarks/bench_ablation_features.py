"""A3 — ablation: direct-only vs graph-only vs all 23 polysemy features.

The paper proposes 11 direct + 12 graph features.  This ablation trains
the same classifier on each subset: both halves must carry signal on
their own, and the full 23 should be at least as good as either half.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.eval.experiments import run_polysemy_detection_experiment
from repro.utils.tables import format_table


def run_all_feature_sets(n_entities: int, seed: int) -> dict[str, dict[str, float]]:
    out = {}
    for feature_set in ("direct", "graph", "all"):
        out[feature_set] = run_polysemy_detection_experiment(
            classifiers=("forest", "logistic"),
            n_entities=n_entities,
            feature_set=feature_set,
            n_splits=5,
            seed=seed,
        )
    return out


def test_ablation_feature_sets(benchmark, scale):
    n_entities = 160 if scale == "paper" else 80
    results = run_once(
        benchmark, run_all_feature_sets, n_entities=n_entities, seed=0
    )

    rows = []
    for feature_set, scores in results.items():
        best = max(scores.values())
        rows.append(
            [feature_set,
             {"direct": 11, "graph": 12, "all": 23}[feature_set],
             f"{best:.3f}"]
        )
    print()
    print(
        format_table(
            ["feature set", "#features", "best F-measure"],
            rows,
            title=f"A3: polysemy feature ablation ({n_entities} terms)",
        )
    )

    best_all = max(results["all"].values())
    best_direct = max(results["direct"].values())
    best_graph = max(results["graph"].values())
    print_paper_vs_measured(
        "A3 headline",
        [
            ("all 23 vs best half", "23 features used in the paper",
             f"{best_all:.3f} vs {max(best_direct, best_graph):.3f}"),
        ],
    )

    # Each half alone must be informative, and the union must not hurt.
    assert best_direct > 0.7
    assert best_graph > 0.7
    assert best_all >= max(best_direct, best_graph) - 0.03
