"""Streaming delta enrichment benchmark: per-delta cost vs. a cold run.

The continuous-enrichment claim measured here and recorded in
``BENCH_streaming.json``: once a corpus has a baseline report, feeding
one new document through
:meth:`repro.workflow.streaming.StreamingEnricher.add_documents` is far
cheaper than re-running the whole pipeline cold, because only terms
whose postings changed are re-featurised (the rest come warm from the
carried-forward feature cache — the report's own counters prove it).
"""

import time

from benchmarks.conftest import emit_bench_json, print_paper_vs_measured, run_once
from repro.corpus.document import Document
from repro.scenarios import make_enrichment_scenario
from repro.workflow.pipeline import OntologyEnricher
from repro.workflow.streaming import StreamingEnricher


def delta_document(position: int) -> Document:
    """A padding document: perturbs no known term's postings."""
    return Document(
        f"stream-{position}",
        [["zzqx", "wwvk", "ggph", "zzqx"], ["wwvk", "ggph", "zzqx"]],
    )


def run_measurements(n_concepts: int, docs_per_concept: int, seed: int,
                     n_deltas: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 3},
    )
    streamer = StreamingEnricher(
        scenario.ontology, scenario.corpus, pos_lexicon=scenario.pos_lexicon
    )

    cold_at = time.perf_counter()
    streamer.baseline()
    cold_seconds = time.perf_counter() - cold_at

    delta_seconds = []
    warm_hits = 0
    recomputed = 0
    for position in range(n_deltas):
        diff = streamer.add_documents([delta_document(position)])
        delta_seconds.append(diff.timings["delta_total"])
        warm_hits += diff.cache.get("hits", 0)
        recomputed += diff.n_recomputed
    assert warm_hits > 0, "deltas never hit the carried-forward cache"
    assert recomputed == 0, "padding documents must not perturb any term"

    # Reference: what each of those updates would cost from scratch.
    scratch = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 3},
    )
    for position in range(n_deltas):
        scratch.corpus.add(delta_document(position))
    scratch_at = time.perf_counter()
    OntologyEnricher(
        scratch.ontology, pos_lexicon=scratch.pos_lexicon
    ).enrich(scratch.corpus)
    scratch_seconds = time.perf_counter() - scratch_at

    return {
        "n_documents": scenario.corpus.n_documents(),
        "n_deltas": n_deltas,
        "cold_run_seconds": cold_seconds,
        "from_scratch_seconds": scratch_seconds,
        "delta_seconds_each": delta_seconds,
        "delta_seconds_mean": sum(delta_seconds) / len(delta_seconds),
        "delta_warm_hits": warm_hits,
        "delta_terms_recomputed": recomputed,
    }


def test_delta_vs_full_rerun(benchmark, scale):
    n_concepts = 40 if scale == "paper" else 20
    result = run_once(
        benchmark,
        run_measurements,
        n_concepts=n_concepts,
        docs_per_concept=4,
        seed=3,
        n_deltas=3,
    )
    speedup = result["from_scratch_seconds"] / max(
        result["delta_seconds_mean"], 1e-9
    )
    print_paper_vs_measured(
        "Streaming delta enrichment "
        f"({result['n_documents']} docs, {result['n_deltas']} deltas)",
        [
            ("cold baseline (s)", "-", f"{result['cold_run_seconds']:.3f}"),
            ("from-scratch rerun (s)", "-",
             f"{result['from_scratch_seconds']:.3f}"),
            ("mean delta (s)", "-", f"{result['delta_seconds_mean']:.3f}"),
            ("delta-vs-rerun speedup", "-", f"{speedup:.1f}x"),
            ("warm cache hits", "-", result["delta_warm_hits"]),
            ("terms recomputed", "-", result["delta_terms_recomputed"]),
        ],
    )
    emit_bench_json(
        "streaming", {**result, "delta_vs_rerun_speedup": speedup}
    )

    # The whole point: a delta must cost well under a full re-run.
    assert speedup >= 1.5, (
        f"a delta is only {speedup:.2f}x cheaper than a from-scratch run"
    )
