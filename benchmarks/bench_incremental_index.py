"""Incremental + sharded index benchmark: stream cost vs. rebuild cost.

Two claims of the incremental/sharded index work are measured here and
recorded in ``BENCH_incremental_index.json``:

* appending one document through ``add_documents`` is at least an order
  of magnitude cheaper than the full rebuild ``Corpus.add`` used to
  force (it is O(new tokens), not O(total tokens));
* a ``ShardedCorpusIndex`` answers every query byte-identically to the
  monolithic index, with comparable build and lookup cost (shard builds
  can additionally fan out over threads).
"""

import time

from benchmarks.conftest import emit_bench_json, print_paper_vs_measured, run_once
from repro.corpus.index import CorpusIndex, ShardedCorpusIndex
from repro.scenarios import make_enrichment_scenario


def query_all(index, terms) -> list[int]:
    return [index.term_frequency(term) for term in terms]


def run_measurements(n_concepts: int, docs_per_concept: int, seed: int,
                     n_shards: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
    )
    documents = list(scenario.corpus)
    terms = scenario.ontology.terms()
    base, last = documents[:-1], documents[-1]

    # Full rebuild: what adding one document used to cost.
    rebuild_at = time.perf_counter()
    full = CorpusIndex(documents)
    rebuild_seconds = time.perf_counter() - rebuild_at

    # Incremental: index the base once, then patch in the last document.
    incremental = CorpusIndex(base)
    add_at = time.perf_counter()
    incremental.add_documents([last])
    add_seconds = time.perf_counter() - add_at
    assert incremental.fingerprint() == full.fingerprint(), \
        "incremental update must reproduce the fresh build's fingerprint"

    # Sharded: build and query parity against the monolithic index.
    sharded_at = time.perf_counter()
    sharded = ShardedCorpusIndex(documents, n_shards=n_shards)
    sharded_build_seconds = time.perf_counter() - sharded_at

    mono_query_at = time.perf_counter()
    mono_counts = query_all(full, terms)
    mono_query_seconds = time.perf_counter() - mono_query_at

    sharded_query_at = time.perf_counter()
    sharded_counts = query_all(sharded, terms)
    sharded_query_seconds = time.perf_counter() - sharded_query_at

    assert sharded_counts == mono_counts, "sharded and monolithic disagree"
    assert sharded.fingerprint() == full.fingerprint()

    return {
        "n_documents": len(documents),
        "n_tokens": full.n_tokens(),
        "n_terms": len(terms),
        "n_shards": n_shards,
        "rebuild_seconds": rebuild_seconds,
        "add_one_doc_seconds": add_seconds,
        "monolithic_build_seconds": rebuild_seconds,
        "sharded_build_seconds": sharded_build_seconds,
        "monolithic_query_seconds": mono_query_seconds,
        "sharded_query_seconds": sharded_query_seconds,
    }


def test_incremental_vs_rebuild(benchmark, scale):
    n_concepts = 80 if scale == "paper" else 40
    result = run_once(
        benchmark,
        run_measurements,
        n_concepts=n_concepts,
        docs_per_concept=6,
        seed=17,
        n_shards=4,
    )
    speedup = result["rebuild_seconds"] / max(
        result["add_one_doc_seconds"], 1e-9
    )
    print_paper_vs_measured(
        "Incremental + sharded index "
        f"({result['n_documents']} docs, {result['n_tokens']:,} tokens)",
        [
            ("full rebuild (s)", "-", f"{result['rebuild_seconds']:.4f}"),
            ("add one doc (s)", "-", f"{result['add_one_doc_seconds']:.4f}"),
            ("add-vs-rebuild speedup", "-", f"{speedup:.0f}x"),
            ("sharded build (s)", "-",
             f"{result['sharded_build_seconds']:.4f}"),
            ("monolithic queries (s)", "-",
             f"{result['monolithic_query_seconds']:.4f}"),
            ("sharded queries (s)", "-",
             f"{result['sharded_query_seconds']:.4f}"),
        ],
    )
    emit_bench_json(
        "incremental_index", {**result, "add_vs_rebuild_speedup": speedup}
    )

    # The whole point: streaming a document must not cost a rebuild.
    assert speedup >= 10.0, (
        f"add_documents is only {speedup:.1f}x cheaper than a rebuild"
    )
