"""Corpus-scale benchmark: mmap reopen, worker payloads, numpy Louvain.

Three claims of the scale work (PR 6) are measured on a synthetic
tiny-document corpus and recorded in ``BENCH_scale.json``:

* reopening a persisted :class:`~repro.corpus.index_store.IndexStore`
  generation via mmap is at least an order of magnitude faster than
  rebuilding the index from the documents;
* a :class:`~repro.corpus.index_store.MmapCorpusIndex` pickles to a
  path handle of constant size, so process-pool worker startup no
  longer scales with corpus size (the in-memory index's pickle does);
* the numpy-batched Louvain local-move sweep is at least 3x faster
  than the plain-list sweep on a dense graph, with bit-identical
  labels.

``REPRO_BENCH_SCALE=small`` (default) keeps the corpus at tens of
thousands of documents; ``paper`` runs the full 100k+ document corpus
the roadmap called for.
"""

import json
import pickle
import tempfile
import time

import numpy as np

from benchmarks.conftest import (
    BENCH_OUTPUT_DIR,
    emit_bench_json,
    print_paper_vs_measured,
    run_once,
)
from repro.clustering.louvain import CSRGraph, louvain_labels
from repro.corpus.document import Document
from repro.corpus.index import CorpusIndex
from repro.corpus.index_store import IndexStore

#: Synthetic corpus shape: abstracts-as-titles — many tiny documents.
VOCABULARY = 5_000
TOKENS_PER_DOC = (10, 15)


def emit_scale_section(section: str, payload: dict) -> None:
    """Merge one leg's numbers into the shared ``BENCH_scale.json``."""
    path = BENCH_OUTPUT_DIR / "BENCH_scale.json"
    record = json.loads(path.read_text()) if path.exists() else {}
    record.pop("scale", None)  # re-stamped by emit_bench_json
    record[section] = payload
    emit_bench_json("scale", record)


def synthetic_documents(n_docs: int, seed: int) -> list[Document]:
    """``n_docs`` single-sentence documents of 10-15 vocabulary terms."""
    rng = np.random.default_rng(seed)
    vocab = np.array([f"term{i:05d}" for i in range(VOCABULARY)])
    lengths = rng.integers(
        TOKENS_PER_DOC[0], TOKENS_PER_DOC[1] + 1, size=n_docs
    )
    token_ids = rng.integers(0, VOCABULARY, size=int(lengths.sum()))
    documents, offset = [], 0
    for i, length in enumerate(lengths.tolist()):
        tokens = vocab[token_ids[offset:offset + length]].tolist()
        offset += length
        documents.append(Document(f"doc-{i:07d}", [tokens]))
    return documents


def payload_measurements(documents: list[Document], directory: str) -> dict:
    """Pickle cost of shipping an index to a process-pool worker."""
    in_memory = CorpusIndex(documents)
    store = IndexStore(directory)
    store.save(in_memory)
    mapped = store.open(in_memory.fingerprint())

    full_payload = pickle.dumps(in_memory)
    handle_payload = pickle.dumps(mapped)

    started = time.perf_counter()
    pickle.loads(full_payload)
    full_load_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pickle.loads(handle_payload)  # reopens the mmap generation
    handle_load_seconds = time.perf_counter() - started

    return {
        "n_documents": len(documents),
        "full_pickle_bytes": len(full_payload),
        "handle_pickle_bytes": len(handle_payload),
        "full_unpickle_seconds": full_load_seconds,
        "handle_unpickle_seconds": handle_load_seconds,
    }


def run_index_measurements(n_docs: int, n_shards: int, seed: int) -> dict:
    documents = synthetic_documents(n_docs, seed=seed)

    # What every run used to pay: a from-scratch in-memory build.
    rebuild_at = time.perf_counter()
    rebuilt = CorpusIndex(documents)
    rebuild_seconds = time.perf_counter() - rebuild_at

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as root:
        store = IndexStore(f"{root}/store")
        cold_at = time.perf_counter()
        built = store.load_or_build(
            documents,
            n_shards=n_shards,
            n_workers=2,
            build_backend="process",
        )
        cold_seconds = time.perf_counter() - cold_at
        assert built.fingerprint() == rebuilt.fingerprint()

        # Warm path: fingerprint the documents, mmap-open the arrays.
        reopen_at = time.perf_counter()
        reopened = store.load_or_build(documents, n_shards=n_shards)
        reopen_seconds = time.perf_counter() - reopen_at
        assert reopened.fingerprint() == rebuilt.fingerprint()

        # Worker payloads at two corpus sizes: the mmap handle must not
        # grow with the corpus, the in-memory pickle necessarily does.
        small = payload_measurements(
            synthetic_documents(n_docs // 4, seed=seed + 1), f"{root}/small"
        )
        large = payload_measurements(documents, f"{root}/large")

    return {
        "n_documents": n_docs,
        "n_tokens": rebuilt.n_tokens(),
        "n_shards": n_shards,
        "rebuild_seconds": rebuild_seconds,
        "build_and_persist_seconds": cold_seconds,
        "mmap_reopen_seconds": reopen_seconds,
        "payload_small": small,
        "payload_large": large,
    }


def dense_graph(n_nodes: int, avg_degree: int, seed: int) -> CSRGraph:
    """An Erdős-Rényi graph with float weights in [0.5, 1.5)."""
    rng = np.random.default_rng(seed)
    rows, cols = np.triu_indices(n_nodes, k=1)
    mask = rng.random(rows.size) < avg_degree / n_nodes
    rows, cols = rows[mask], cols[mask]
    weights = rng.random(rows.size) + 0.5
    return CSRGraph.from_edges(n_nodes, rows, cols, weights)


def run_louvain_measurements(n_nodes: int, avg_degree: int, seed: int) -> dict:
    graph = dense_graph(n_nodes, avg_degree, seed=seed)

    def sweep(vectorize: bool) -> tuple[np.ndarray, float]:
        best = float("inf")
        labels = None
        for __ in range(3):  # min-of-3: one number, less scheduler noise
            started = time.perf_counter()
            labels = louvain_labels(graph, seed=0, vectorize=vectorize)
            best = min(best, time.perf_counter() - started)
        return labels, best

    list_labels, list_seconds = sweep(vectorize=False)
    numpy_labels, numpy_seconds = sweep(vectorize=True)
    assert np.array_equal(numpy_labels, list_labels), (
        "vectorized Louvain sweep changed the labelling"
    )
    return {
        "n_nodes": n_nodes,
        "n_edges": int(graph.indices.size // 2),
        "n_communities": int(list_labels.max()) + 1,
        "list_sweep_seconds": list_seconds,
        "numpy_sweep_seconds": numpy_seconds,
    }


def test_index_scale(benchmark, scale):
    n_docs = 120_000 if scale == "paper" else 30_000
    result = run_once(
        benchmark,
        run_index_measurements,
        n_docs=n_docs,
        n_shards=4,
        seed=23,
    )
    reopen_speedup = result["rebuild_seconds"] / max(
        result["mmap_reopen_seconds"], 1e-9
    )
    small, large = result["payload_small"], result["payload_large"]
    print_paper_vs_measured(
        f"On-disk index at scale ({result['n_documents']:,} docs, "
        f"{result['n_tokens']:,} tokens)",
        [
            ("in-memory rebuild (s)", "-",
             f"{result['rebuild_seconds']:.3f}"),
            ("build + persist (s)", "-",
             f"{result['build_and_persist_seconds']:.3f}"),
            ("mmap reopen (s)", "-", f"{result['mmap_reopen_seconds']:.3f}"),
            ("reopen-vs-rebuild speedup", "-", f"{reopen_speedup:.0f}x"),
            ("worker payload (mmap)", "-",
             f"{large['handle_pickle_bytes']:,} B"),
            ("worker payload (in-memory)", "-",
             f"{large['full_pickle_bytes']:,} B"),
        ],
    )
    emit_scale_section(
        "index", {**result, "reopen_vs_rebuild_speedup": reopen_speedup}
    )

    # The whole point: a reopen must not cost a rebuild, and the worker
    # payload must not scale with the corpus.
    assert reopen_speedup >= 10.0, (
        f"mmap reopen is only {reopen_speedup:.1f}x faster than a rebuild"
    )
    assert large["handle_pickle_bytes"] <= 2 * small["handle_pickle_bytes"], (
        "mmap worker payload grew with the corpus"
    )
    assert large["handle_pickle_bytes"] < 4096
    assert large["full_pickle_bytes"] >= 2 * small["full_pickle_bytes"], (
        "expected the in-memory pickle to grow ~4x with the corpus"
    )


def test_louvain_scale(benchmark, scale):
    n_nodes = 2_000 if scale == "paper" else 1_000
    avg_degree = 1_200 if scale == "paper" else 800
    result = run_once(
        benchmark,
        run_louvain_measurements,
        n_nodes=n_nodes,
        avg_degree=avg_degree,
        seed=29,
    )
    speedup = result["list_sweep_seconds"] / max(
        result["numpy_sweep_seconds"], 1e-9
    )
    print_paper_vs_measured(
        f"Vectorized Louvain sweep ({result['n_nodes']:,} nodes, "
        f"{result['n_edges']:,} edges)",
        [
            ("plain-list sweep (s)", "-",
             f"{result['list_sweep_seconds']:.3f}"),
            ("numpy sweep (s)", "-", f"{result['numpy_sweep_seconds']:.3f}"),
            ("speedup", "-", f"{speedup:.2f}x"),
            ("communities", "-", result["n_communities"]),
        ],
    )
    emit_scale_section(
        "louvain", {**result, "numpy_vs_list_speedup": speedup}
    )

    assert speedup >= 3.0, (
        f"numpy Louvain sweep is only {speedup:.2f}x faster"
    )
