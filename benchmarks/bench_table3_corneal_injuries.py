"""E3 — Table 3: the top-10 propositions for "corneal injuries".

Rebuilds the paper's running example on the real MeSH eye fragment with a
generated PubMed-like context corpus: ranked positions with cosine
scores, correct rows flagged (synonyms corneal injury / damage / trauma;
fathers corneal diseases / eye injuries).  The paper finds 5 of 10
correct with cosines between 0.35 and 0.43.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.eval import paper
from repro.eval.experiments import run_table3_experiment
from repro.utils.tables import format_table


def test_table3_corneal_injuries(benchmark, scale):
    docs = 30 if scale == "paper" else 20
    result = run_once(benchmark, run_table3_experiment, seed=0,
                      docs_per_concept=docs)

    paper_rows = [
        [rank, term, f"{cosine:.4f}", "*" if correct else ""]
        for rank, (term, cosine, correct) in enumerate(
            paper.TABLE3_PROPOSITIONS, start=1
        )
    ]
    print()
    print(
        format_table(
            ["#", "where", "cosine", "correct"],
            paper_rows,
            title="Table 3 (paper)",
        )
    )

    flags = result.correct_flags()
    measured_rows = [
        [p.rank, p.term, f"{p.cosine:.4f}", "*" if ok else ""]
        for p, ok in zip(result.propositions, flags)
    ]
    print()
    print(
        format_table(
            ["#", "where", "cosine", "correct"],
            measured_rows,
            title="Table 3 (measured)",
        )
    )
    print_paper_vs_measured(
        "Table 3 summary",
        [
            ("correct in top 10", paper.TABLE3_CORRECT_IN_TOP10, result.n_correct()),
            ("propositions", 10, len(result.propositions)),
        ],
    )

    # Shape: several correct propositions, including at least one synonym
    # near the top, and cosines strictly descending.
    assert result.n_correct() >= 3
    top3 = {p.term for p in result.propositions[:3]}
    synonyms = {"corneal injury", "corneal damage", "corneal trauma"}
    assert top3 & synonyms, f"no synonym in the top 3: {top3}"
    cosines = [p.cosine for p in result.propositions]
    assert cosines == sorted(cosines, reverse=True)
    # Not everything is correct — distractors (chemical burns, amniotic
    # membrane, ...) must compete, as they do in the paper's table.
    assert result.n_correct() < len(result.propositions)
