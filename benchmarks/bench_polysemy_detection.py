"""E5 — §2(II): polysemy detection with the 23 features.

"We used several machine learning algorithms to determine if a term is
polysemic or not.  Totally, 23 features were proposed, 11 direct and 12
from the induced graph.  Their effectiveness showed an F-measure of 98%."

The benchmark sweeps six classifier families over the entity benchmark
(MSH-WSD-quality contexts, equal context budgets so volume cannot leak
the label) and asserts the best F-measure lands in the paper's band.
"""

from benchmarks.conftest import print_paper_vs_measured, run_once
from repro.eval import paper
from repro.eval.experiments import run_polysemy_detection_experiment
from repro.utils.tables import format_table


def test_polysemy_detection_f_measure(benchmark, scale):
    n_entities = 240 if scale == "paper" else 120
    results = run_once(
        benchmark,
        run_polysemy_detection_experiment,
        n_entities=n_entities,
        n_splits=10,
        seed=0,
    )

    rows = [[name, f"{f1:.3f}"] for name, f1 in sorted(
        results.items(), key=lambda item: -item[1]
    )]
    print()
    print(
        format_table(
            ["classifier", "F-measure"],
            rows,
            title=f"Polysemy detection, 10-fold CV, {n_entities} terms, "
            f"23 features (11 direct + 12 graph)",
        )
    )
    best_name, best_f1 = max(results.items(), key=lambda item: item[1])
    print_paper_vs_measured(
        "§2(II) headline",
        [
            ("best F-measure", f"{paper.POLYSEMY_DETECTION_F_MEASURE:.2f}",
             f"{best_f1:.3f}"),
            ("best classifier", "(unreported)", best_name),
        ],
    )

    assert best_f1 >= 0.93, f"best F-measure {best_f1} below the paper band"
    assert best_f1 <= 1.0
    # several families should do well — the features carry the signal
    strong = [name for name, f1 in results.items() if f1 > 0.9]
    assert len(strong) >= 3, f"only {strong} above 0.9"
