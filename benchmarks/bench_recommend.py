"""Recommendation benchmark: trie annotation vs the naive per-label scan.

The recommendation engine's hot loop is annotation — "which labels of
this ontology occur in the input, and where?".  :class:`LabelTrie`
answers every start position in one left-to-right walk
(O(tokens x longest label)); the naive baseline scans the input once
per label (O(tokens x labels)), which is how early annotators worked
and why they could not serve large ontologies interactively.

Both matchers are asserted byte-identical before timing, the trie must
be at least **5x** faster at this scale, and a full end-to-end
recommendation over the registry is timed for context.  Results land
in ``BENCH_recommend.json``.
"""

import time

from benchmarks.conftest import emit_bench_json, print_paper_vs_measured, run_once
from repro.corpus.index import CorpusIndex
from repro.recommend import (
    LabelTrie,
    OntologyRegistry,
    Recommender,
    naive_longest_matches,
)
from repro.scenarios import make_enrichment_scenario

#: The acceptance floor asserted (and recorded) by this benchmark.
MIN_TRIE_SPEEDUP = 5.0


def run_comparison(n_concepts: int, docs_per_concept: int, seed: int):
    scenario = make_enrichment_scenario(
        seed=seed,
        n_concepts=n_concepts,
        docs_per_concept=docs_per_concept,
        polysemy_histogram={2: 3},
    )
    registry = OntologyRegistry()
    registry.register("full", scenario.ontology)
    labels = list(registry.get("full").labels)
    tokens = [
        token for doc in scenario.corpus for token in doc.tokens()
    ]

    built_at = time.perf_counter()
    trie = LabelTrie(labels)
    build_seconds = time.perf_counter() - built_at

    trie_at = time.perf_counter()
    trie_matches = trie.longest_matches(tokens)
    trie_seconds = time.perf_counter() - trie_at

    naive_at = time.perf_counter()
    naive_matches = naive_longest_matches(labels, tokens)
    naive_seconds = time.perf_counter() - naive_at

    assert trie_matches == naive_matches, "trie and naive scan disagree"

    recommend_at = time.perf_counter()
    report = Recommender(registry).recommend_index(
        CorpusIndex(scenario.corpus)
    )
    recommend_seconds = time.perf_counter() - recommend_at

    return {
        "n_labels": len(labels),
        "n_tokens": len(tokens),
        "n_matches": len(trie_matches),
        "trie_build_seconds": build_seconds,
        "trie_match_seconds": trie_seconds,
        "naive_match_seconds": naive_seconds,
        "recommend_seconds": recommend_seconds,
        "top_aggregate": report.ranking[0].aggregate,
    }


def test_trie_vs_naive_annotation(benchmark, scale):
    n_concepts = 120 if scale == "paper" else 60
    result = run_once(
        benchmark,
        run_comparison,
        n_concepts=n_concepts,
        docs_per_concept=6,
        seed=17,
    )
    amortised = result["trie_build_seconds"] + result["trie_match_seconds"]
    speedup = result["naive_match_seconds"] / max(amortised, 1e-9)
    print_paper_vs_measured(
        "LabelTrie vs naive per-label scan "
        f"({result['n_labels']} labels, {result['n_tokens']:,} tokens)",
        [
            ("trie build (s)", "-", f"{result['trie_build_seconds']:.4f}"),
            ("trie matching (s)", "-", f"{result['trie_match_seconds']:.4f}"),
            ("naive matching (s)", "-", f"{result['naive_match_seconds']:.4f}"),
            ("speedup incl. build", ">= 5x", f"{speedup:.1f}x"),
            ("end-to-end recommend (s)", "-", f"{result['recommend_seconds']:.4f}"),
        ],
    )
    emit_bench_json(
        "recommend",
        {
            **result,
            "speedup_incl_build": speedup,
            "min_required_speedup": MIN_TRIE_SPEEDUP,
        },
    )

    assert speedup >= MIN_TRIE_SPEEDUP
