"""Setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (which shell out to ``bdist_wheel``) fail.
Keeping a classic ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` code path, which works offline.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Way to Automatically Enrich Biomedical "
        "Ontologies' (EDBT 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
